type fault_policy =
  | Panic_on_fault
  | Restart_on_fault of int
  | Stop_on_fault

type aliasing_policy = Cell_semantics | Reject_overlap

type config = {
  scheduler : Scheduler.t;
  fault_policy : fault_policy;
  aliasing_policy : aliasing_policy;
  blocking_commands : bool;
  max_processes : int;
  ram_base : int;
  ram_size : int;
}

let default_config () =
  {
    scheduler = Scheduler.round_robin ();
    fault_policy = Restart_on_fault 3;
    aliasing_policy = Cell_semantics;
    blocking_commands = false;
    max_processes = 8;
    ram_base = 0x2000_0000;
    ram_size = 128 * 1024;
  }

type stats = {
  mutable syscalls : int;
  mutable context_switches : int;
  mutable upcalls_delivered : int;
  mutable sleeps : int;
  mutable loop_iterations : int;
  mutable aliased_allows : int;
  mutable zero_len_allows : int;
  mutable overlap_rejected : int;
  mutable faults : int;
  mutable restarts : int;
  mutable filtered_commands : int;
}

exception Panic of string

(* The kernel's counters live in its metrics registry (the single stats
   surface); this record caches the resolved handles so hot-path updates
   are plain field writes. [stats] below is a compatibility view built
   from the same series. *)
type kcounters = {
  c_syscalls : Tock_obs.Metrics.counter;
  c_context_switches : Tock_obs.Metrics.counter;
  c_upcalls_delivered : Tock_obs.Metrics.counter;
  c_sleeps : Tock_obs.Metrics.counter;
  c_loop_iterations : Tock_obs.Metrics.counter;
  c_aliased_allows : Tock_obs.Metrics.counter;
  c_zero_len_allows : Tock_obs.Metrics.counter;
  c_overlap_rejected : Tock_obs.Metrics.counter;
  c_faults : Tock_obs.Metrics.counter;
  c_restarts : Tock_obs.Metrics.counter;
  c_filtered_commands : Tock_obs.Metrics.counter;
}

(* Syscall classes, indexed for the per-class latency histograms. *)
let class_names =
  [| "yield"; "subscribe"; "command"; "allow_rw"; "allow_ro"; "memop";
     "exit"; "command_blocking" |]

let class_index (call : Syscall.call) =
  match call with
  | Syscall.Yield _ -> 0
  | Syscall.Subscribe _ -> 1
  | Syscall.Command _ -> 2
  | Syscall.Allow_rw _ -> 3
  | Syscall.Allow_ro _ -> 4
  | Syscall.Memop _ -> 5
  | Syscall.Exit _ -> 6
  | Syscall.Command_blocking _ -> 7

type pentry = {
  proc : Process.t;
  factory : Process.t -> Process.execution;
  mutable pending_resume : Process.resume_arg option;
  ret_scratch : int array;
      (* Reused return-register buffer for this process's syscall
         returns; valid because a process always decodes a return before
         it can issue the syscall that would overwrite it. *)
  c_cycles : Tock_obs.Metrics.counter;
      (* cycles attributed to this process's slices (app + syscall work) *)
}

type t = {
  k_chip : Tock_hw.Chip.t;
  k_config : config;
  k_reg : Tock_obs.Metrics.t;
      (* Kernel-owned registry: one per kernel, so per-board series stay
         separate even when boards share a Sim (radio groups). *)
  k_obs : Tock_obs.Ctx.t;
  kc : kcounters;
  h_sys : Tock_obs.Metrics.histogram array; (* indexed by class_index *)
  drv_ctrs : (int, Tock_obs.Metrics.counter * Tock_obs.Metrics.counter) Hashtbl.t;
      (* driver_num -> (commands, cycles) *)
  k_deferred : Deferred_call.t;
  drivers : (int, Driver.t) Hashtbl.t;
  mutable table : pentry array; (* index = pid: ids are dense and never reused *)
  mutable next_pid : int;
  mutable ram_next : int; (* bump pointer into the RAM pool *)
  mutable fault_hook : Process.t -> Process.fault_reason -> unit;
  mutable trace_hook :
    (Process.t -> Syscall.call -> Syscall.ret option -> unit) option;
}

let create ?config:(cfg = default_config ()) chip =
  let sim = chip.Tock_hw.Chip.sim in
  let reg = Tock_obs.Metrics.create () in
  let c name = Tock_obs.Metrics.counter reg ("kernel." ^ name) in
  let kc =
    {
      c_syscalls = c "syscalls";
      c_context_switches = c "context_switches";
      c_upcalls_delivered = c "upcalls_delivered";
      c_sleeps = c "sleeps";
      c_loop_iterations = c "loop_iterations";
      c_aliased_allows = c "aliased_allows";
      c_zero_len_allows = c "zero_len_allows";
      c_overlap_rejected = c "overlap_rejected";
      c_faults = c "faults";
      c_restarts = c "restarts";
      c_filtered_commands = c "filtered_commands";
    }
  in
  let h_sys =
    Array.map
      (fun nm -> Tock_obs.Metrics.histogram reg ("kernel.syscall_cycles." ^ nm))
      class_names
  in
  let t =
    {
      k_chip = chip;
      k_config = cfg;
      k_reg = reg;
      k_obs =
        {
          Tock_obs.Ctx.trace = Tock_hw.Sim.trace_events sim;
          metrics = reg;
          clock = (fun () -> Tock_hw.Sim.now sim);
        };
      kc;
      h_sys;
      drv_ctrs = Hashtbl.create 16;
      k_deferred = Deferred_call.create ();
      drivers = Hashtbl.create 16;
      table = [||];
      next_pid = 0;
      ram_next = cfg.ram_base;
      fault_hook = (fun _ _ -> ());
      trace_hook = None;
    }
  in
  (* Per-process gauges, published when a snapshot is taken — never from
     the main loop. Gauge handles are looked up per snapshot (idempotent
     by name), so restarts and late-created processes just work. *)
  Tock_obs.Metrics.on_snapshot reg (fun () ->
      Array.iter
        (fun pe ->
          let p = pe.proc in
          let g suffix v =
            Tock_obs.Metrics.set
              (Tock_obs.Metrics.gauge reg
                 ("process." ^ Process.name p ^ "." ^ suffix))
              v
          in
          g "syscalls" (Process.syscall_count p);
          g "grant_enters" (Process.grant_enter_count p);
          g "grant_bytes" (Process.grant_bytes_used p);
          g "restarts" (Process.restart_count p);
          g "mpu_scans" (Process.mpu_scan_count p);
          g "upcalls_dropped" (Process.upcalls_dropped p))
        t.table);
  t

let chip t = t.k_chip

let sim t = t.k_chip.Tock_hw.Chip.sim

let config t = t.k_config

let metrics t = t.k_reg

let metrics_snapshot t = Tock_obs.Metrics.snapshot t.k_reg

let obs t = t.k_obs

(* Compatibility view over the registry: a fresh record per call, read
   straight from the counters. *)
let stats t =
  let v c = Tock_obs.Metrics.counter_value c in
  {
    syscalls = v t.kc.c_syscalls;
    context_switches = v t.kc.c_context_switches;
    upcalls_delivered = v t.kc.c_upcalls_delivered;
    sleeps = v t.kc.c_sleeps;
    loop_iterations = v t.kc.c_loop_iterations;
    aliased_allows = v t.kc.c_aliased_allows;
    zero_len_allows = v t.kc.c_zero_len_allows;
    overlap_rejected = v t.kc.c_overlap_rejected;
    faults = v t.kc.c_faults;
    restarts = v t.kc.c_restarts;
    filtered_commands = v t.kc.c_filtered_commands;
  }

let deferred t = t.k_deferred

let set_fault_hook t fn = t.fault_hook <- fn

let set_syscall_trace t fn = t.trace_hook <- fn

let timing t = t.k_chip.Tock_hw.Chip.timing

let spend t n = Tock_hw.Sim.spend (sim t) n

(* ---- drivers ---- *)

let register_driver t (d : Driver.t) =
  Hashtbl.replace t.drivers d.Driver.driver_num d;
  Hashtbl.replace t.drv_ctrs d.Driver.driver_num
    ( Tock_obs.Metrics.counter t.k_reg
        ("driver." ^ d.Driver.driver_name ^ ".commands"),
      Tock_obs.Metrics.counter t.k_reg
        ("driver." ^ d.Driver.driver_name ^ ".cycles") )

let find_driver t num = Hashtbl.find_opt t.drivers num

(* ---- process table ---- *)

let entry t pid =
  if pid >= 0 && pid < Array.length t.table then Some t.table.(pid) else None

let processes t = Array.to_list (Array.map (fun pe -> pe.proc) t.table)

let find_process t pid = Option.map (fun pe -> pe.proc) (entry t pid)

let find_process_by_name t nm =
  let n = Array.length t.table in
  let rec go i =
    if i >= n then None
    else if Process.name t.table.(i).proc = nm then Some t.table.(i).proc
    else go (i + 1)
  in
  go 0

let grant_reserve = 640
(* Kernel-owned suffix reserved per process for grant growth before the
   MPU must be reconfigured; grants may grow past it down to the app
   break. *)

let create_process t ~cap:_ ~name ~flash_base ~flash ~min_ram ?permissions
    ?storage ?(tbf_flags = Tock_tbf.Tbf.flag_enabled) ~factory () =
  if Array.length t.table >= t.k_config.max_processes then Error Error.NOMEM
  else begin
    let mpu = t.k_chip.Tock_hw.Chip.mpu in
    let mpu_config = Tock_hw.Mpu.new_config mpu in
    let pool_end = t.k_config.ram_base + t.k_config.ram_size in
    match
      Tock_hw.Mpu.allocate_app_memory_region mpu mpu_config
        ~unallocated_start:t.ram_next
        ~unallocated_size:(pool_end - t.ram_next)
        ~min_memory_size:(min_ram + grant_reserve)
        ~initial_app_memory_size:min_ram
        ~initial_kernel_memory_size:grant_reserve
    with
    | None -> Error Error.NOMEM
    | Some (block_start, block_size) ->
        t.ram_next <- block_start + block_size;
        let pid = t.next_pid in
        t.next_pid <- pid + 1;
        let proc =
          Process.create ~id:pid ~name ~ram_base:block_start
            ~ram_size:block_size
            ~initial_app_break:(block_start + min_ram)
            ~flash_base ~flash ~mpu ~mpu_config ~permissions ~storage
            ~tbf_flags
        in
        Process.set_execution proc (factory proc);
        let enabled = tbf_flags land Tock_tbf.Tbf.flag_enabled <> 0 in
        Process.set_state proc (if enabled then Process.Runnable else Process.Unstarted);
        Process.set_obs proc t.k_obs;
        let pe =
          {
            proc;
            factory;
            pending_resume = Some Process.Rstart;
            ret_scratch = Array.make 4 0;
            c_cycles =
              Tock_obs.Metrics.counter t.k_reg ("process." ^ name ^ ".cycles");
          }
        in
        t.table <- Array.append t.table [| pe |];
        Ok proc
  end

let do_restart t pe =
  let proc = pe.proc in
  Tock_obs.Metrics.incr t.kc.c_restarts;
  Process.note_restart proc;
  Process.destroy_execution proc;
  Process.reset_syscall_state proc;
  Process.set_execution proc (pe.factory proc);
  pe.pending_resume <- Some Process.Rstart;
  Process.set_state proc Process.Runnable

let start_process t ~cap:_ pid =
  match entry t pid with
  | None -> Error Error.NODEVICE
  | Some pe -> (
      match Process.state pe.proc with
      | Process.Unstarted ->
          Process.set_state pe.proc Process.Runnable;
          Ok ()
      | Process.Stopped prior ->
          Process.set_state pe.proc prior;
          Ok ()
      | _ -> Error Error.ALREADY)

let stop_process t ~cap:_ pid =
  match entry t pid with
  | None -> Error Error.NODEVICE
  | Some pe -> (
      match Process.state pe.proc with
      | Process.Stopped _ -> Error Error.ALREADY
      | Process.Terminated _ | Process.Faulted _ -> Error Error.FAIL
      | s ->
          Process.set_state pe.proc (Process.Stopped s);
          Ok ())

let restart_process t ~cap:_ pid =
  match entry t pid with
  | None -> Error Error.NODEVICE
  | Some pe ->
      do_restart t pe;
      Ok ()

let terminate_process t ~cap:_ pid =
  match entry t pid with
  | None -> Error Error.NODEVICE
  | Some pe ->
      Process.destroy_execution pe.proc;
      Process.set_state pe.proc (Process.Terminated { code = -1 });
      Ok ()

(* ---- capsule-facing resources ---- *)

let schedule_upcall t pid ~driver ~subscribe_num ~args =
  match entry t pid with
  | None -> false
  | Some pe ->
      spend t (timing t).Tock_hw.Chip.upcall_push;
      Process.enqueue_upcall pe.proc ~driver ~subscribe_num ~args

let empty_subslice = Subslice.of_bytes Bytes.empty

(* Zero-copy, zero-alloc fast path: the window was materialized (and the
   range validated) at allow time, so the hit path is a hashtable lookup
   plus a window reset — the reset restores the *base* window, i.e. the
   allowed range, so a previous borrower's narrowing never leaks and the
   capsule can never widen past what the process allowed (§5.1). *)
let with_allow t pid ~kind ~driver ~allow_num f =
  match entry t pid with
  | None -> Error Error.NODEVICE
  | Some pe -> (
      let e = Process.allow_get pe.proc ~kind ~driver ~allow_num in
      match e.Process.a_window with
      | None -> Ok (f empty_subslice)
      | Some w ->
          Subslice.reset w;
          Ok (f w))

let with_allow_rw t pid ~driver ~allow_num f =
  with_allow t pid ~kind:`Rw ~driver ~allow_num f

let with_allow_ro t pid ~driver ~allow_num f =
  with_allow t pid ~kind:`Ro ~driver ~allow_num f

(* For capsules that hold the buffer across a split-phase operation
   (console tx, net tx, digest feed): a clone shares the bytes and the
   base bound but narrows independently, so in-flight I/O and the
   syscall-path borrows cannot disturb each other's windows. *)
let allow_window t pid ~kind ~driver ~allow_num =
  match entry t pid with
  | None -> None
  | Some pe -> (
      match
        (Process.allow_get pe.proc ~kind ~driver ~allow_num).Process.a_window
      with
      | None -> None
      | Some w ->
          let c = Subslice.clone w in
          Subslice.reset c;
          Some c)

let allow_size t pid ~kind ~driver ~allow_num =
  match entry t pid with
  | None -> 0
  | Some pe -> (Process.allow_get pe.proc ~kind ~driver ~allow_num).Process.a_len

let process_ids t =
  Array.to_list (Array.map (fun pe -> Process.id pe.proc) t.table)

let process_state_of t pid = Option.map (fun pe -> Process.state pe.proc) (entry t pid)

let process_name_of t pid = Option.map (fun pe -> Process.name pe.proc) (entry t pid)

(* ---- syscall dispatch ---- *)

type dispatch =
  [ `Return of Syscall.ret
  | `Deliver of Process.pending_upcall
  | `Blocked
  | `Dead ]

let validate_allow t proc ~kind ~addr ~len =
  if len = 0 then begin
    (* Zero-length revocation/initial allow: any address is accepted but a
       null-pointer slice would be a Rust niche violation — count the
       dynamic fix-up (paper §5.1.2). *)
    if addr <> 0 then Tock_obs.Metrics.incr t.kc.c_zero_len_allows;
    Ok ()
  end
  else begin
    let in_app_ram =
      addr >= Process.ram_base proc && addr + len <= Process.app_break proc
    in
    let in_flash =
      addr >= Process.flash_base proc && addr + len <= Process.flash_end proc
    in
    let region_ok = match kind with `Rw -> in_app_ram | `Ro -> in_app_ram || in_flash in
    if not region_ok then Error Error.INVAL
    else if
      Process.allow_overlaps proc ~kind
        { Process.a_addr = addr; a_len = len; a_window = None }
    then (
      match t.k_config.aliasing_policy with
      | Reject_overlap ->
          Tock_obs.Metrics.incr t.kc.c_overlap_rejected;
          Error Error.INVAL
      | Cell_semantics ->
          Tock_obs.Metrics.incr t.kc.c_aliased_allows;
          Ok ())
    else Ok ()
  end

let handle_allow t proc ~kind ~driver ~allow_num ~addr ~len : dispatch =
  match find_driver t driver with
  | None -> `Return (Syscall.Failure_u32_u32 (Error.NODEVICE, addr, len))
  | Some d -> (
      match validate_allow t proc ~kind ~addr ~len with
      | Error e -> `Return (Syscall.Failure_u32_u32 (e, addr, len))
      | Ok () -> (
          (* Materialize the window once, at the allow boundary; every
             later capsule access reuses it without translation. *)
          match Process.make_allow_entry proc ~addr ~len with
          | None -> `Return (Syscall.Failure_u32_u32 (Error.INVAL, addr, len))
          | Some entry -> (
              let hook =
                match kind with
                | `Rw -> d.Driver.allow_rw_hook
                | `Ro -> d.Driver.allow_ro_hook
              in
              match hook proc ~allow_num entry with
              | Error e -> `Return (Syscall.Failure_u32_u32 (e, addr, len))
              | Ok () ->
                  let old =
                    Process.allow_swap proc ~kind ~driver ~allow_num entry
                  in
                  `Return
                    (Syscall.Success_u32_u32
                       (old.Process.a_addr, old.Process.a_len)))))

let handle_memop proc ~op ~arg : dispatch =
  let open Syscall in
  if op = memop_brk then
    match Process.brk proc arg with
    | Ok () -> `Return Success
    | Error e -> `Return (Failure e)
  else if op = memop_sbrk then
    match Process.sbrk proc arg with
    | Ok old -> `Return (Success_u32 old)
    | Error e -> `Return (Failure e)
  else if op = memop_flash_start then `Return (Success_u32 (Process.flash_base proc))
  else if op = memop_flash_end then `Return (Success_u32 (Process.flash_end proc))
  else if op = memop_ram_start then `Return (Success_u32 (Process.ram_base proc))
  else if op = memop_ram_end then `Return (Success_u32 (Process.ram_end proc))
  else `Return (Failure Error.NOSUPPORT)

let deliver_of_pending t proc pu =
  Tock_obs.Metrics.incr t.kc.c_upcalls_delivered;
  let tr = Tock_hw.Sim.trace_events (sim t) in
  if Tock_obs.Trace.on tr then
    Tock_obs.Trace.emit tr
      ~ts:(Tock_hw.Sim.now (sim t))
      ~tid:(Process.id proc) Tock_obs.Trace.Upcall Tock_obs.Trace.Instant
      ~arg:pu.Process.pu_driver ~text:"";
  let a0, a1, a2 = pu.Process.pu_args in
  Process.Rupcall
    {
      fnptr = pu.Process.pu_upcall.Process.fnptr;
      appdata = pu.Process.pu_upcall.Process.appdata;
      arg0 = a0;
      arg1 = a1;
      arg2 = a2;
    }

(* Run a driver command, attributing its wall cycles and call count to
   the driver's registry series. *)
let timed_command t (d : Driver.t) proc ~command_num ~arg1 ~arg2 =
  let t0 = Tock_hw.Sim.now (sim t) in
  let r = d.Driver.command proc ~command_num ~arg1 ~arg2 in
  (match Hashtbl.find_opt t.drv_ctrs d.Driver.driver_num with
  | Some (calls, cycles) ->
      Tock_obs.Metrics.incr calls;
      Tock_obs.Metrics.add cycles (Tock_hw.Sim.now (sim t) - t0)
  | None -> ());
  r

let handle_syscall t pe (call : Syscall.call) : dispatch =
  let proc = pe.proc in
  match call with
  | Syscall.Yield Syscall.Yield_wait -> (
      match Process.pop_upcall proc with
      | Some pu -> `Deliver pu
      | None ->
          Process.set_state proc Process.Yielded;
          `Blocked)
  | Syscall.Yield Syscall.Yield_no_wait -> (
      match Process.pop_upcall proc with
      | Some pu -> `Deliver pu
      | None -> `Return (Syscall.Success_u32 0))
  | Syscall.Yield (Syscall.Yield_wait_for { driver; subscribe_num }) -> (
      match Process.pop_upcall_for proc ~driver ~subscribe_num with
      | Some pu ->
          let a0, a1, a2 = pu.Process.pu_args in
          Tock_obs.Metrics.incr t.kc.c_upcalls_delivered;
          `Return (Syscall.Success_u32_u32_u32 (a0, a1, a2))
      | None ->
          Process.set_state proc (Process.Yielded_for { driver; subscribe_num });
          `Blocked)
  | Syscall.Subscribe { driver; subscribe_num; upcall_fn; appdata } -> (
      match find_driver t driver with
      | None -> `Return (Syscall.Failure_u32_u32 (Error.NODEVICE, upcall_fn, appdata))
      | Some d -> (
          match d.Driver.subscribe_hook proc ~subscribe_num with
          | Error e -> `Return (Syscall.Failure_u32_u32 (e, upcall_fn, appdata))
          | Ok () ->
              let old =
                Process.subscribe_swap proc ~driver ~subscribe_num
                  { Process.fnptr = upcall_fn; appdata }
              in
              `Return
                (Syscall.Success_u32_u32 (old.Process.fnptr, old.Process.appdata))))
  | Syscall.Command { driver; command_num; arg1; arg2 } -> (
      match find_driver t driver with
      | None -> `Return (Syscall.Failure Error.NODEVICE)
      | Some d ->
          if not (Process.command_allowed proc ~driver ~command_num) then begin
            Tock_obs.Metrics.incr t.kc.c_filtered_commands;
            `Return (Syscall.Failure Error.NODEVICE)
          end
          else `Return (timed_command t d proc ~command_num ~arg1 ~arg2))
  | Syscall.Allow_rw { driver; allow_num; addr; len } ->
      handle_allow t proc ~kind:`Rw ~driver ~allow_num ~addr ~len
  | Syscall.Allow_ro { driver; allow_num; addr; len } ->
      handle_allow t proc ~kind:`Ro ~driver ~allow_num ~addr ~len
  | Syscall.Memop { op; arg } -> handle_memop proc ~op ~arg
  | Syscall.Exit { variant = 0; code } ->
      Process.destroy_execution proc;
      Process.set_state proc (Process.Terminated { code });
      `Dead
  | Syscall.Exit { variant = 1; _ } ->
      do_restart t pe;
      `Dead
  | Syscall.Exit _ -> `Return (Syscall.Failure Error.NOSUPPORT)
  | Syscall.Command_blocking { driver; command_num; arg1; arg2; subscribe_num }
    -> (
      if not t.k_config.blocking_commands then
        `Return (Syscall.Failure Error.NOSUPPORT)
      else
        match find_driver t driver with
        | None -> `Return (Syscall.Failure Error.NODEVICE)
        | Some d -> (
            if not (Process.command_allowed proc ~driver ~command_num) then begin
              Tock_obs.Metrics.incr t.kc.c_filtered_commands;
              `Return (Syscall.Failure Error.NODEVICE)
            end
            else
              let r = timed_command t d proc ~command_num ~arg1 ~arg2 in
              if not (Syscall.ret_is_success r) then `Return r
              else
                match Process.pop_upcall_for proc ~driver ~subscribe_num with
                | Some pu ->
                    let a0, a1, a2 = pu.Process.pu_args in
                    `Return (Syscall.Success_u32_u32_u32 (a0, a1, a2))
                | None ->
                    Process.set_state proc
                      (Process.Blocked_command { driver; subscribe_num });
                    `Blocked))

let handle_fault t pe reason =
  let proc = pe.proc in
  Tock_obs.Metrics.incr t.kc.c_faults;
  t.fault_hook proc reason;
  let describe = function
    | Process.Mpu_violation s -> "MPU violation: " ^ s
    | Process.Bad_syscall s -> "bad syscall: " ^ s
    | Process.App_panic s -> "app panic: " ^ s
  in
  match t.k_config.fault_policy with
  | Panic_on_fault ->
      raise
        (Panic
           (Printf.sprintf "process %s faulted: %s" (Process.name proc)
              (describe reason)))
  | Restart_on_fault max ->
      if Process.restart_count proc < max then do_restart t pe
      else begin
        Process.destroy_execution proc;
        Process.set_state proc (Process.Faulted reason)
      end
  | Stop_on_fault ->
      Process.destroy_execution proc;
      Process.set_state proc (Process.Faulted reason)

(* ---- the main loop ---- *)

let deliverable pe =
  match Process.state pe.proc with
  | Process.Runnable -> true
  | Process.Yielded -> Process.has_pending_upcalls pe.proc
  | Process.Yielded_for { driver; subscribe_num }
  | Process.Blocked_command { driver; subscribe_num } ->
      Process.has_upcall_for pe.proc ~driver ~subscribe_num
  | Process.Unstarted | Process.Faulted _ | Process.Terminated _
  | Process.Stopped _ ->
      false

let run_slice t pe timeslice =
  let proc = pe.proc in
  let pid = Process.id proc in
  let tm = timing t in
  let tr = Tock_hw.Sim.trace_events (sim t) in
  Tock_obs.Metrics.incr t.kc.c_context_switches;
  let slice_t0 = Tock_hw.Sim.now (sim t) in
  if Tock_obs.Trace.on tr then
    Tock_obs.Trace.emit tr ~ts:slice_t0 ~tid:pid Tock_obs.Trace.Schedule
      Tock_obs.Trace.Begin ~arg:pid ~text:(Process.name proc);
  spend t tm.Tock_hw.Chip.context_switch;
  (* Initial resume argument for this slice. *)
  let initial_arg =
    match Process.state proc with
    | Process.Runnable ->
        let a = Option.value pe.pending_resume ~default:Process.Rcontinue in
        pe.pending_resume <- None;
        a
    | Process.Yielded -> (
        match Process.pop_upcall proc with
        | Some pu -> deliver_of_pending t proc pu
        | None -> Process.Rcontinue (* raced away; treat as spurious wake *))
    | Process.Yielded_for { driver; subscribe_num }
    | Process.Blocked_command { driver; subscribe_num } -> (
        match Process.pop_upcall_for proc ~driver ~subscribe_num with
        | Some pu ->
            let a0, a1, a2 = pu.Process.pu_args in
            Tock_obs.Metrics.incr t.kc.c_upcalls_delivered;
            Syscall.encode_ret_into
              (Syscall.Success_u32_u32_u32 (a0, a1, a2))
              pe.ret_scratch;
            Process.Rsyscall_ret pe.ret_scratch
        | None -> Process.Rcontinue)
    | _ -> Process.Rcontinue
  in
  Process.set_state proc Process.Runnable;
  (* A [None] timeslice means "run until it blocks" (cooperative). The
     slice is still chunked so the main loop regains control at a bounded
     rate (deadline checks, multi-board stepping); the cooperative
     scheduler is sticky, so no other process runs in between. *)
  let budget = match timeslice with Some n -> n | None -> 200_000 in
  let rec go arg remaining =
    let trap, used = Process.run proc ~fuel:remaining arg in
    spend t used;
    Tock_obs.Metrics.add pe.c_cycles used;
    let remaining = remaining - used in
    match trap with
    | Process.Trap_timeslice_expired ->
        pe.pending_resume <- Some Process.Rcontinue;
        t.k_config.scheduler.Scheduler.charge proc Scheduler.Used_full_slice
    | Process.Trap_fault reason ->
        handle_fault t pe reason;
        t.k_config.scheduler.Scheduler.charge proc Scheduler.Yielded_early
    | Process.Trap_syscall regs -> (
        Tock_obs.Metrics.incr t.kc.c_syscalls;
        let sys_t0 = Tock_hw.Sim.now (sim t) in
        spend t tm.Tock_hw.Chip.syscall_overhead;
        let remaining = remaining - tm.Tock_hw.Chip.syscall_overhead in
        if Array.length regs = Syscall.registers then
          Process.note_syscall proc ~class_num:regs.(0);
        match Syscall.decode_call regs with
        | Error e ->
            Syscall.encode_ret_into (Syscall.Failure e) pe.ret_scratch;
            continue_or_stash pe.ret_scratch remaining
        | Ok call -> (
            let idx = class_index call in
            if Tock_obs.Trace.on tr then
              Tock_obs.Trace.emit tr ~ts:sys_t0 ~tid:pid
                Tock_obs.Trace.Syscall Tock_obs.Trace.Begin ~arg:idx
                ~text:class_names.(idx);
            let dispatch = handle_syscall t pe call in
            (match t.trace_hook with
            | Some trace ->
                trace proc call
                  (match dispatch with `Return r -> Some r | _ -> None)
            | None -> ());
            (* Latency from trap entry to dispatch completion: includes
               the architectural syscall overhead and any driver work. *)
            let sys_end = Tock_hw.Sim.now (sim t) in
            Tock_obs.Metrics.observe t.h_sys.(idx) (sys_end - sys_t0);
            Tock_obs.Metrics.add pe.c_cycles (sys_end - sys_t0);
            if Tock_obs.Trace.on tr then
              Tock_obs.Trace.emit tr ~ts:sys_end ~tid:pid
                Tock_obs.Trace.Syscall Tock_obs.Trace.End ~arg:idx
                ~text:class_names.(idx);
            match dispatch with
            | `Return ret ->
                Syscall.encode_ret_into ret pe.ret_scratch;
                continue_or_stash pe.ret_scratch remaining
            | `Deliver pu ->
                let arg = deliver_of_pending t proc pu in
                if remaining > 0 then go arg remaining
                else begin
                  pe.pending_resume <- Some arg;
                  t.k_config.scheduler.Scheduler.charge proc
                    Scheduler.Used_full_slice
                end
            | `Blocked ->
                t.k_config.scheduler.Scheduler.charge proc Scheduler.Yielded_early
            | `Dead ->
                t.k_config.scheduler.Scheduler.charge proc Scheduler.Yielded_early))
  and continue_or_stash ret_regs remaining =
    if remaining > 0 then go (Process.Rsyscall_ret ret_regs) remaining
    else begin
      pe.pending_resume <- Some (Process.Rsyscall_ret ret_regs);
      t.k_config.scheduler.Scheduler.charge pe.proc Scheduler.Used_full_slice
    end
  in
  go initial_arg budget;
  if Tock_obs.Trace.on tr then
    Tock_obs.Trace.emit tr
      ~ts:(Tock_hw.Sim.now (sim t))
      ~tid:pid Tock_obs.Trace.Schedule Tock_obs.Trace.End ~arg:pid
      ~text:(Process.name proc)

(* One loop iteration minus the idle policy: interrupts, deferred calls,
   one process slice. [`Idle] means nothing ran — the caller decides
   whether to deep-sleep to the next event ({!step}) or hand the wake
   deadline to an outer cross-board scheduler ({!run_to_deadline}). *)
let step_work t ~cap:_ =
  let tm = timing t in
  Tock_obs.Metrics.incr t.kc.c_loop_iterations;
  spend t tm.Tock_hw.Chip.kernel_loop_overhead;
  let irq = t.k_chip.Tock_hw.Chip.irq in
  let worked = ref false in
  if Tock_hw.Irq.has_pending irq then begin
    let n = Tock_hw.Irq.service irq in
    spend t (30 * n);
    worked := true
  end;
  if Deferred_call.has_pending t.k_deferred then begin
    ignore (Deferred_call.service t.k_deferred);
    worked := true
  end;
  (* One backwards pass builds the runnable list in ascending-pid order
     without the filter-then-map double traversal. *)
  let runnable = ref [] in
  for i = Array.length t.table - 1 downto 0 do
    let pe = t.table.(i) in
    if deliverable pe then runnable := pe.proc :: !runnable
  done;
  match t.k_config.scheduler.Scheduler.next !runnable with
  | Scheduler.Run { proc; timeslice } ->
      (match entry t (Process.id proc) with
      | Some pe -> run_slice t pe timeslice
      | None -> ());
      `Worked
  | Scheduler.Idle -> if !worked then `Worked else `Idle

(* Metered idle sleep to an absolute time: power-model the CPU down,
   fire any events due in the interval at their own deadlines, count and
   trace the span. Both the in-kernel idle path and the fleet
   scheduler's fast-forward go through here, so a board reaches the same
   state whether it slept event-to-event or was warped in one hop. *)
let sleep_to t ~cap:_ time =
  if time <= Tock_hw.Sim.now (sim t) then
    (* Degenerate wake: nothing to sleep through, but keep the
       fire-everything-due contract of the old advance-to-next-event
       idle path. *)
    ignore (Tock_hw.Sim.run_due_events (sim t))
  else begin
    let sleep_t0 = Tock_hw.Sim.now (sim t) in
    Tock_hw.Chip.cpu_set_active t.k_chip false;
    Tock_hw.Sim.sleep_until (sim t) time;
    Tock_hw.Chip.cpu_set_active t.k_chip true;
    Tock_obs.Metrics.incr t.kc.c_sleeps;
    let tr = Tock_hw.Sim.trace_events (sim t) in
    if Tock_obs.Trace.on tr then begin
      (* The span is emitted after the fact (we only know it was a
         sleep once an event fired); the exporter's stable sort
         re-orders it before the events that fired at wake-up. *)
      Tock_obs.Trace.emit tr ~ts:sleep_t0 ~tid:(-1) Tock_obs.Trace.Sleep
        Tock_obs.Trace.Begin ~arg:0 ~text:"idle";
      Tock_obs.Trace.emit tr
        ~ts:(Tock_hw.Sim.now (sim t))
        ~tid:(-1) Tock_obs.Trace.Sleep Tock_obs.Trace.End ~arg:0 ~text:"idle"
    end
  end

let step t ~cap =
  match step_work t ~cap with
  | `Worked -> `Worked
  | `Idle ->
      (* Nothing to do: deep sleep until the next hardware event. *)
      let d = Tock_hw.Sim.next_deadline (sim t) in
      if d = max_int then `Stalled
      else begin
        sleep_to t ~cap d;
        `Slept
      end

let run_to_deadline t ~cap ~deadline =
  let rec loop () =
    if Tock_hw.Sim.now (sim t) >= deadline then `Budget
    else
      match step_work t ~cap with
      | `Worked -> loop ()
      | `Idle ->
          let d = Tock_hw.Sim.next_deadline (sim t) in
          if d = max_int then `Stalled
          else if d >= deadline then `Asleep d
          else begin
            sleep_to t ~cap d;
            loop ()
          end
  in
  loop ()

let run_until t ~cap ?(max_cycles = 2_000_000_000) pred =
  let deadline = Tock_hw.Sim.now (sim t) + max_cycles in
  let rec loop () =
    if pred () then true
    else if Tock_hw.Sim.now (sim t) >= deadline then false
    else
      match step t ~cap with
      | `Worked | `Slept -> loop ()
      | `Stalled -> pred ()
  in
  loop ()

let run_cycles t ~cap n =
  let deadline = Tock_hw.Sim.now (sim t) + n in
  ignore (run_until t ~cap ~max_cycles:n (fun () -> Tock_hw.Sim.now (sim t) >= deadline))

let run_to_completion t ~cap ?(max_cycles = 2_000_000_000) () =
  ignore (run_until t ~cap ~max_cycles (fun () -> false))

(* ---- board-state snapshot (park/resume) ----

   Process executions are effect continuations — they cannot be
   serialized. So a parked board is captured as a compact byte *witness*
   of everything observable about it (clock and cycle split, event-queue
   schedule, the full process table including RAM bytes and syscall
   state, both metrics registries), and resume is *replay*: the caller
   rebuilds the board from its deterministic construction recipe and
   [restore] drives it back to the witness clock with the same
   chopping-invariant primitives the fleet scheduler uses
   ([run_to_deadline] interleaved with [sleep_to] at reported wakes —
   exactly the contract documented on {!run_to_deadline}), then checks
   the re-taken witness byte-for-byte. Capsule grant values and
   scheduler-internal cursors are not encoded (they are arbitrary
   closures/values); they are reproduced by the replay itself, and any
   divergence they could cause surfaces in the encoded state the next
   time it matters. *)

let snapshot_magic = "TCKSNP01"

let add_i buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_s buf s =
  add_i buf (String.length s);
  Buffer.add_string buf s

let rec encode_pstate buf (s : Process.state) =
  match s with
  | Process.Unstarted -> add_i buf 0
  | Process.Runnable -> add_i buf 1
  | Process.Yielded -> add_i buf 2
  | Process.Yielded_for { driver; subscribe_num } ->
      add_i buf 3;
      add_i buf driver;
      add_i buf subscribe_num
  | Process.Blocked_command { driver; subscribe_num } ->
      add_i buf 4;
      add_i buf driver;
      add_i buf subscribe_num
  | Process.Faulted r ->
      add_i buf 5;
      add_s buf
        (match r with
        | Process.Mpu_violation m -> "M" ^ m
        | Process.Bad_syscall m -> "B" ^ m
        | Process.App_panic m -> "A" ^ m)
  | Process.Terminated { code } ->
      add_i buf 6;
      add_i buf code
  | Process.Stopped prior ->
      add_i buf 7;
      encode_pstate buf prior

let encode_resume buf (r : Process.resume_arg option) =
  match r with
  | None -> add_i buf 0
  | Some Process.Rstart -> add_i buf 1
  | Some Process.Rcontinue -> add_i buf 2
  | Some (Process.Rsyscall_ret regs) ->
      add_i buf 3;
      add_i buf (Array.length regs);
      Array.iter (add_i buf) regs
  | Some (Process.Rupcall { fnptr; appdata; arg0; arg1; arg2 }) ->
      add_i buf 4;
      List.iter (add_i buf) [ fnptr; appdata; arg0; arg1; arg2 ]

let encode_process buf pe =
  let p = pe.proc in
  add_s buf (Process.name p);
  encode_pstate buf (Process.state p);
  encode_resume buf pe.pending_resume;
  List.iter (add_i buf)
    [
      Process.restart_count p;
      Process.syscall_count p;
      Process.grant_enter_count p;
      Process.grant_bytes_used p;
      Process.app_break p;
      Process.kernel_break p;
      Process.upcalls_dropped p;
    ];
  (* Subscriptions and allows, sorted by key for a canonical layout. *)
  let subs = ref [] in
  Process.iter_subscriptions p (fun ~driver ~subscribe_num up ->
      subs := (driver, subscribe_num, up.Process.fnptr, up.Process.appdata) :: !subs);
  let subs = List.sort compare !subs in
  add_i buf (List.length subs);
  List.iter
    (fun (d, s, f, a) ->
      add_i buf d;
      add_i buf s;
      add_i buf f;
      add_i buf a)
    subs;
  let allows = ref [] in
  Process.iter_allows p (fun ~kind ~driver ~allow_num e ->
      let k = match kind with `Rw -> 0 | `Ro -> 1 in
      allows := (k, driver, allow_num, e.Process.a_addr, e.Process.a_len) :: !allows);
  let allows = List.sort compare !allows in
  add_i buf (List.length allows);
  List.iter
    (fun (k, d, n, addr, len) ->
      add_i buf k;
      add_i buf d;
      add_i buf n;
      add_i buf addr;
      add_i buf len)
    allows;
  (* Pending upcalls in delivery order — FIFO position is state. *)
  let np = ref 0 in
  Process.iter_pending_upcalls p (fun _ -> Stdlib.incr np);
  add_i buf !np;
  Process.iter_pending_upcalls p (fun pu ->
      let a0, a1, a2 = pu.Process.pu_args in
      List.iter (add_i buf)
        [
          pu.Process.pu_driver;
          pu.Process.pu_subscribe;
          pu.Process.pu_upcall.Process.fnptr;
          pu.Process.pu_upcall.Process.appdata;
          a0;
          a1;
          a2;
        ]);
  let ram = Process.ram_bytes p in
  add_i buf (Bytes.length ram);
  Buffer.add_bytes buf ram

let snapshot t =
  let s = sim t in
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf snapshot_magic;
  add_i buf (Tock_hw.Sim.now s);
  add_i buf (Tock_hw.Sim.active_cycles s);
  add_i buf (Tock_hw.Sim.sleep_cycles s);
  let ev = Tock_hw.Sim.event_times s in
  add_i buf (Array.length ev);
  Array.iter
    (fun (time, seq) ->
      add_i buf time;
      add_i buf seq)
    ev;
  add_i buf t.next_pid;
  add_i buf t.ram_next;
  add_i buf (Array.length t.table);
  Array.iter (encode_process buf) t.table;
  add_s buf
    (Tock_obs.Metrics.packed_to_string (Tock_obs.Metrics.packed_of t.k_reg));
  add_s buf
    (Tock_obs.Metrics.packed_to_string
       (Tock_obs.Metrics.packed_of (Tock_hw.Sim.metrics s)));
  Buffer.contents buf

let snapshot_clock w =
  if
    String.length w < String.length snapshot_magic + 8
    || not (String.equal (String.sub w 0 (String.length snapshot_magic)) snapshot_magic)
  then invalid_arg "Kernel.snapshot_clock: not a board snapshot";
  Int64.to_int (String.get_int64_le w (String.length snapshot_magic))

let replay_to t ~cap target =
  let rec go () =
    if Tock_hw.Sim.now (sim t) < target then
      match run_to_deadline t ~cap ~deadline:target with
      | `Budget -> go ()
      | `Stalled -> ()
      | `Asleep wake ->
          if wake >= target then sleep_to t ~cap target
          else begin
            sleep_to t ~cap wake;
            go ()
          end
  in
  go ()

let restore t ~cap witness =
  let target = snapshot_clock witness in
  replay_to t ~cap target;
  let got = snapshot t in
  if String.equal got witness then Ok ()
  else
    Error
      (Printf.sprintf
         "replayed board diverged from snapshot at clock %d (want %s got %s)"
         target
         (Digest.to_hex (Digest.string witness))
         (Digest.to_hex (Digest.string got)))
