(* otock-lint: allow-file crypto-confinement — the PKE adaptor is
   trusted core: it marshals wire-format keys/signatures into
   Tock_crypto.Schnorr values on behalf of the modeled engine, exactly
   the role the hw engines play for the other primitives. *)
open Cells

let err_of_string = function
  | "transmit busy" | "receive busy" | "spi busy" | "i2c busy" | "trng busy"
  | "flash busy" ->
      Error.BUSY
  | s when String.length s >= 4 && String.sub s 0 4 = "bad " -> Error.INVAL
  | _ -> Error.FAIL

let alarm (hw : Tock_hw.Hw_timer.t) : Hil.alarm =
  {
    alarm_now = (fun () -> Tock_hw.Hw_timer.now_ticks hw);
    alarm_frequency_hz = Tock_hw.Hw_timer.frequency_hz hw;
    alarm_set =
      (fun ~reference ~dt -> Tock_hw.Hw_timer.set_alarm hw ~reference ~dt);
    alarm_disarm = (fun () -> Tock_hw.Hw_timer.disarm hw);
    alarm_is_armed = (fun () -> Tock_hw.Hw_timer.is_armed hw);
    alarm_set_client = (fun fn -> Tock_hw.Hw_timer.set_client hw fn);
  }

(* The raw (buffer, offset, length) triple behind a window: the DMA
   descriptor the hardware gathers from. Trusted-code-only use of
   [Subslice.underlying], and deliberately uncounted by the copy
   accounting — the hardware's own latch copy is not a software copy. *)
let seg_of sub =
  let off, len = Subslice.window sub in
  (Subslice.underlying sub, off, len)

let segs_of_iov iov = Array.to_list (Array.map seg_of iov)

let uart (hw : Tock_hw.Uart.t) : Hil.uart =
  let tx_inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let tx_iov_inflight : Subslice.t array Take_cell.t = Take_cell.empty () in
  let rx_inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let tx_client = ref (fun (_ : Subslice.t) -> ()) in
  let tx_iov_client = ref (fun (_ : Subslice.t array) -> ()) in
  let rx_client = ref (fun (_ : Subslice.t) -> ()) in
  let tx_busy () =
    not (Take_cell.is_none tx_inflight && Take_cell.is_none tx_iov_inflight)
  in
  Tock_hw.Uart.set_transmit_client hw (fun ~len:_ ->
      (* The hardware serializes: at most one of the cells is full. *)
      match Take_cell.take tx_inflight with
      | Some sub -> !tx_client sub
      | None -> (
          match Take_cell.take tx_iov_inflight with
          | Some iov -> !tx_iov_client iov
          | None -> ()));
  Tock_hw.Uart.set_receive_client hw (fun data ->
      match Take_cell.take rx_inflight with
      | Some sub ->
          let n = min (Bytes.length data) (Subslice.length sub) in
          Subslice.blit_from_bytes ~src:data ~src_off:0 sub ~dst_off:0 ~len:n;
          !rx_client sub
      | None -> ());
  {
    uart_transmit =
      (fun sub ->
        if tx_busy () then Error (Error.BUSY, sub)
        else
          match Tock_hw.Uart.transmit_segs hw [ seg_of sub ] with
          | Ok () ->
              Take_cell.put tx_inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub));
    uart_set_transmit_client = (fun fn -> tx_client := fn);
    uart_transmit_iov =
      (fun iov ->
        if tx_busy () then Error (Error.BUSY, iov)
        else
          match Tock_hw.Uart.transmit_segs hw (segs_of_iov iov) with
          | Ok () ->
              Take_cell.put tx_iov_inflight iov;
              Ok ()
          | Error e -> Error (err_of_string e, iov));
    uart_set_transmit_iov_client = (fun fn -> tx_iov_client := fn);
    uart_receive =
      (fun sub ->
        if not (Take_cell.is_none rx_inflight) then Error (Error.BUSY, sub)
        else
          match Tock_hw.Uart.receive hw ~len:(Subslice.length sub) with
          | Ok () ->
              Take_cell.put rx_inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub));
    uart_set_receive_client = (fun fn -> rx_client := fn);
    uart_abort_receive =
      (fun () ->
        Tock_hw.Uart.abort_receive hw;
        ignore (Take_cell.take rx_inflight));
  }

let entropy (hw : Tock_hw.Trng.t) : Hil.entropy =
  {
    entropy_request =
      (fun ~count ->
        Result.map_error err_of_string (Tock_hw.Trng.request hw ~count));
    entropy_set_client = (fun fn -> Tock_hw.Trng.set_client hw fn);
  }

let digest (hw : Tock_hw.Sha_engine.t) : Hil.digest =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let data_client = ref (fun (_ : Subslice.t) -> ()) in
  Tock_hw.Sha_engine.set_data_client hw (fun () ->
      match Take_cell.take inflight with
      | Some sub -> !data_client sub
      | None -> ());
  {
    digest_set_mode =
      (fun mode ->
        Result.map_error err_of_string
          (match mode with
          | Hil.D_sha256 -> Tock_hw.Sha_engine.set_mode_sha256 hw
          | Hil.D_hmac key -> Tock_hw.Sha_engine.set_mode_hmac hw ~key));
    digest_add_data =
      (fun sub ->
        if not (Take_cell.is_none inflight) then Error (Error.BUSY, sub)
        else
          let off, len = Subslice.window sub in
          match
            Tock_hw.Sha_engine.add_data hw (Subslice.underlying sub) ~off ~len
          with
          | Ok () ->
              Take_cell.put inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub));
    digest_set_data_client = (fun fn -> data_client := fn);
    digest_run =
      (fun () -> Result.map_error err_of_string (Tock_hw.Sha_engine.run hw));
    digest_set_digest_client = (fun fn -> Tock_hw.Sha_engine.set_digest_client hw fn);
  }

let aes (hw : Tock_hw.Aes_engine.t) : Hil.aes =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let client = ref (fun (_ : Subslice.t) -> ()) in
  Tock_hw.Aes_engine.set_client hw (fun out ->
      match Take_cell.take inflight with
      | Some sub ->
          let n = min (Bytes.length out) (Subslice.length sub) in
          Subslice.blit_from_bytes ~src:out ~src_off:0 sub ~dst_off:0 ~len:n;
          !client sub
      | None -> ());
  {
    aes_set_key =
      (fun k -> Result.map_error err_of_string (Tock_hw.Aes_engine.set_key hw k));
    aes_set_iv =
      (fun iv -> Result.map_error err_of_string (Tock_hw.Aes_engine.set_iv hw iv));
    aes_crypt =
      (fun mode sub ->
        if not (Take_cell.is_none inflight) then Error (Error.BUSY, sub)
        else
          let hw_mode =
            match mode with
            | Hil.A_ctr -> Tock_hw.Aes_engine.Ctr
            | Hil.A_ecb_encrypt -> Tock_hw.Aes_engine.Ecb_encrypt
            | Hil.A_ecb_decrypt -> Tock_hw.Aes_engine.Ecb_decrypt
          in
          let off, len = Subslice.window sub in
          match
            Tock_hw.Aes_engine.crypt hw ~mode:hw_mode
              ~src:(Subslice.underlying sub) ~off ~len
          with
          | Ok () ->
              Take_cell.put inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub));
    aes_set_client = (fun fn -> client := fn);
  }

let pke (hw : Tock_hw.Pke_engine.t) : Hil.pke =
  {
    pke_verify =
      (fun ~pubkey ~msg ~signature ->
        match
          ( Tock_crypto.Schnorr.public_key_of_bytes pubkey,
            Tock_crypto.Schnorr.signature_of_bytes signature )
        with
        | Some pk, Some s ->
            Result.map_error err_of_string
              (Tock_hw.Pke_engine.verify hw ~pk ~msg ~signature:s)
        | _ -> Error Error.INVAL);
    pke_set_client = (fun fn -> Tock_hw.Pke_engine.set_client hw fn);
  }

let flash (hw : Tock_hw.Flash_ctrl.t) : Hil.flash =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let iov_inflight : Subslice.t array Take_cell.t = Take_cell.empty () in
  let client = ref (fun (_ : Hil.flash_event) -> ()) in
  Tock_hw.Flash_ctrl.set_client hw (fun r ->
      match r with
      | Tock_hw.Flash_ctrl.Read_done b -> !client (`Read_done b)
      | Tock_hw.Flash_ctrl.Write_done -> (
          match Take_cell.take inflight with
          | Some sub -> !client (`Write_done sub)
          | None -> ())
      | Tock_hw.Flash_ctrl.Program_done -> (
          match Take_cell.take iov_inflight with
          | Some iov -> !client (`Program_done iov)
          | None -> ())
      | Tock_hw.Flash_ctrl.Erase_done -> !client `Erase_done);
  {
    flash_pages = Tock_hw.Flash_ctrl.pages hw;
    flash_page_size = Tock_hw.Flash_ctrl.page_size hw;
    flash_read =
      (fun ~page ->
        Result.map_error err_of_string (Tock_hw.Flash_ctrl.read_page hw ~page));
    flash_write =
      (fun ~page sub ->
        if not (Take_cell.is_none inflight && Take_cell.is_none iov_inflight)
        then Error (Error.BUSY, sub)
        else begin
          (* Pad the window to a full page, as the DMA engine requires. *)
          let page_buf = Bytes.make (Tock_hw.Flash_ctrl.page_size hw) '\xff' in
          let n = min (Subslice.length sub) (Bytes.length page_buf) in
          Subslice.blit_to_bytes sub ~src_off:0 ~dst:page_buf ~dst_off:0 ~len:n;
          match Tock_hw.Flash_ctrl.write_page hw ~page page_buf with
          | Ok () ->
              Take_cell.put inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub)
        end);
    flash_program =
      (fun ~page ~off iov ->
        if not (Take_cell.is_none inflight && Take_cell.is_none iov_inflight)
        then Error (Error.BUSY, iov)
        else
          match
            Tock_hw.Flash_ctrl.program_region hw ~page ~off (segs_of_iov iov)
          with
          | Ok () ->
              Take_cell.put iov_inflight iov;
              Ok ()
          | Error e -> Error (err_of_string e, iov));
    flash_erase =
      (fun ~page ->
        Result.map_error err_of_string (Tock_hw.Flash_ctrl.erase_page hw ~page));
    flash_set_client = (fun fn -> client := fn);
    flash_read_sync = (fun ~page -> Tock_hw.Flash_ctrl.read_page_sync hw ~page);
  }

let radio (hw : Tock_hw.Radio.t) : Hil.radio =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let iov_inflight : Subslice.t array Take_cell.t = Take_cell.empty () in
  let tx_client = ref (fun (_ : Subslice.t) -> ()) in
  let tx_iov_client = ref (fun (_ : Subslice.t array) -> ()) in
  let tx_busy () =
    not (Take_cell.is_none inflight && Take_cell.is_none iov_inflight)
  in
  let map_err e =
    match e with
    | "radio off" -> Error.OFF
    | "already transmitting" -> Error.BUSY
    | _ -> Error.SIZE
  in
  Tock_hw.Radio.set_transmit_client hw (fun () ->
      match Take_cell.take inflight with
      | Some sub -> !tx_client sub
      | None -> (
          match Take_cell.take iov_inflight with
          | Some iov -> !tx_iov_client iov
          | None -> ()));
  {
    radio_transmit =
      (fun ~dest sub ->
        if tx_busy () then Error (Error.BUSY, sub)
        else
          match Tock_hw.Radio.transmit_segs hw ~dest [ seg_of sub ] with
          | Ok () ->
              Take_cell.put inflight sub;
              Ok ()
          | Error e -> Error (map_err e, sub));
    radio_set_transmit_client = (fun fn -> tx_client := fn);
    radio_transmit_iov =
      (fun ~dest iov ->
        if tx_busy () then Error (Error.BUSY, iov)
        else
          match Tock_hw.Radio.transmit_segs hw ~dest (segs_of_iov iov) with
          | Ok () ->
              Take_cell.put iov_inflight iov;
              Ok ()
          | Error e -> Error (map_err e, iov));
    radio_set_transmit_iov_client = (fun fn -> tx_iov_client := fn);
    radio_set_receive_client = (fun fn -> Tock_hw.Radio.set_receive_client hw fn);
    radio_start_listening = (fun () -> Tock_hw.Radio.start_listening hw);
    radio_stop = (fun () -> Tock_hw.Radio.stop hw);
    radio_addr = Tock_hw.Radio.addr hw;
  }

let spi_device (hw : Tock_hw.Spi.t) ~cs : Hil.spi_device =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let client = ref (fun (_ : Subslice.t) -> ()) in
  (* The SPI controller has a single completion callback; each device view
     re-registers on transfer start. The virtualizer above serializes. *)
  {
    spi_transfer =
      (fun sub ->
        if not (Take_cell.is_none inflight) then Error (Error.BUSY, sub)
        else begin
          Tock_hw.Spi.set_client hw (fun ~rx ->
              match Take_cell.take inflight with
              | Some s ->
                  let n = min (Bytes.length rx) (Subslice.length s) in
                  Subslice.blit_from_bytes ~src:rx ~src_off:0 s ~dst_off:0 ~len:n;
                  !client s
              | None -> ());
          let tx = Subslice.to_bytes sub in
          match Tock_hw.Spi.read_write hw ~cs ~tx ~len:(Bytes.length tx) with
          | Ok () ->
              Take_cell.put inflight sub;
              Ok ()
          | Error e -> Error (err_of_string e, sub)
        end);
    spi_set_client = (fun fn -> client := fn);
  }

let i2c_device (hw : Tock_hw.I2c.t) ~addr : Hil.i2c_device =
  let inflight : Subslice.t Take_cell.t = Take_cell.empty () in
  let client =
    ref (fun (_ : (Subslice.t, Error.t * Subslice.t) result) -> ())
  in
  let on_complete code rx =
    match Take_cell.take inflight with
    | Some sub -> (
        match code with
        | Tock_hw.I2c.Done ->
            let n = min (Bytes.length rx) (Subslice.length sub) in
            if n > 0 then
              Subslice.blit_from_bytes ~src:rx ~src_off:0 sub ~dst_off:0 ~len:n;
            !client (Ok sub)
        | Tock_hw.I2c.Nack -> !client (Error (Error.NOACK, sub)))
    | None -> ()
  in
  let start sub op =
    if not (Take_cell.is_none inflight) then Error (Error.BUSY, sub)
    else begin
      Tock_hw.I2c.set_client hw on_complete;
      match op () with
      | Ok () ->
          Take_cell.put inflight sub;
          Ok ()
      | Error e -> Error (err_of_string e, sub)
    end
  in
  {
    i2c_write =
      (fun sub ->
        start sub (fun () -> Tock_hw.I2c.write hw ~addr (Subslice.to_bytes sub)));
    i2c_read =
      (fun sub ->
        start sub (fun () ->
            Tock_hw.I2c.read hw ~addr ~len:(Subslice.length sub)));
    i2c_write_read =
      (fun ~write_len sub ->
        let wl = min write_len (Subslice.length sub) in
        let prefix = Bytes.sub (Subslice.to_bytes sub) 0 wl in
        start sub (fun () ->
            Tock_hw.I2c.write_read hw ~addr prefix
              ~read_len:(Subslice.length sub)));
    i2c_set_client = (fun fn -> client := fn);
  }

let gpio_pin (hw : Tock_hw.Gpio.t) ~pin : Hil.gpio_pin =
  {
    pin_make_output = (fun () -> Tock_hw.Gpio.set_mode hw ~pin Tock_hw.Gpio.Output);
    pin_make_input = (fun () -> Tock_hw.Gpio.set_mode hw ~pin Tock_hw.Gpio.Input);
    pin_set = (fun v -> Tock_hw.Gpio.set hw ~pin v);
    pin_read = (fun () -> Tock_hw.Gpio.read hw ~pin);
    pin_enable_interrupt =
      (fun edge ->
        let e =
          match edge with
          | `Rising -> Tock_hw.Gpio.Rising
          | `Falling -> Tock_hw.Gpio.Falling
          | `Either -> Tock_hw.Gpio.Either
        in
        Tock_hw.Gpio.enable_interrupt hw ~pin e);
    pin_disable_interrupt = (fun () -> Tock_hw.Gpio.disable_interrupt hw ~pin);
    pin_set_client = (fun fn -> Tock_hw.Gpio.set_pin_client hw ~pin fn);
  }

let adc (hw : Tock_hw.Adc.t) : Hil.adc =
  {
    adc_channels = Tock_hw.Adc.channel_count hw;
    adc_sample =
      (fun ~channel ->
        Result.map_error err_of_string (Tock_hw.Adc.sample hw ~channel));
    adc_set_client = (fun fn -> Tock_hw.Adc.set_client hw fn);
  }
