type id = int

type fault_reason =
  | Mpu_violation of string
  | Bad_syscall of string
  | App_panic of string

type state =
  | Unstarted
  | Runnable
  | Yielded
  | Yielded_for of { driver : int; subscribe_num : int }
  | Blocked_command of { driver : int; subscribe_num : int }
  | Faulted of fault_reason
  | Terminated of { code : int }
  | Stopped of state

type trap =
  | Trap_syscall of int array
  | Trap_fault of fault_reason
  | Trap_timeslice_expired

type resume_arg =
  | Rstart
  | Rcontinue
  | Rsyscall_ret of int array
  | Rupcall of {
      fnptr : int;
      appdata : int;
      arg0 : int;
      arg1 : int;
      arg2 : int;
    }

type execution = {
  step : fuel:int -> resume_arg -> trap * int;
  destroy : unit -> unit;
}

type upcall = { fnptr : int; appdata : int }

let null_upcall = { fnptr = 0; appdata = 0 }

type pending_upcall = {
  pu_driver : int;
  pu_subscribe : int;
  pu_upcall : upcall;
  pu_args : int * int * int;
}

(* An allowed buffer, materialized as a window over process memory at
   allow time (§4.2): [a_window] is a base-bounded Subslice the kernel
   hands to capsules in place — no per-access translation, no copy, and
   no way to widen past the allowed range. [None] iff the allow is
   zero-length (a Tock 2.0 revocation). *)
type allow_entry = { a_addr : int; a_len : int; a_window : Subslice.t option }

let zero_allow = { a_addr = 0; a_len = 0; a_window = None }

(* Last-hit MPU access cache, one per access kind. The emulated data
   plane funnels every load/store through [check_access]; the common case
   is a run of accesses inside the same protection region, so we remember
   the permitting [c_lo, c_hi) range and the MPU configuration generation
   it was observed at. A hit is three integer compares — no region-table
   scan. Any mutation of the MPU config (region allocation, brk, restart)
   bumps the generation and implicitly invalidates all three entries;
   caching a range across a generation change is exactly the stale-MPU
   bug class of paper §5.4, so validity is checked on every lookup. *)
type access_cache = {
  mutable c_gen : int; (* -1 = never primed *)
  mutable c_lo : int;
  mutable c_hi : int;
}

let fresh_cache () = { c_gen = -1; c_lo = 0; c_hi = 0 }

let upcall_queue_capacity = 16

(* ---- freeze/thaw bridge ----

   Process executions are effect continuations and cannot be
   serialized, but the userland emulator keeps a small amount of
   *data* state beside the continuation (bump-allocator cursor, upcall
   function-id counter, named scratch buffers). The emulator installs a
   [bridge] of closures over that state when it attaches an execution,
   so the kernel's freeze/thaw machinery can capture and re-establish
   it without [Tock] depending on the userland layer. *)

type emu_residue = {
  er_alloc_next : int;
  er_next_fn : int;
  er_scratch : (string * (int * int)) list;  (* tag -> (addr, size), sorted *)
}

type bridge = {
  br_residue : unit -> emu_residue;
  br_set_residue : emu_residue -> unit;
  br_remap_upcall : old_id:int -> new_id:int -> bool;
      (* Rebind the closure registered under a live upcall function id
         to the id recorded in a frozen image (ids are handed out in
         registration order, which a thaw prologue replays only
         partially). False if no closure lives under [old_id]. *)
}

type t = {
  p_id : id;
  p_name : string;
  ram : bytes;
  p_ram_base : int;
  mutable app_break : int;
  mutable kernel_break : int;
  initial_app_break : int;
  initial_kernel_break : int;
  p_flash_base : int;
  flash : bytes;
  mpu : Tock_hw.Mpu.t;
  mpu_config : Tock_hw.Mpu.config;
  cache_read : access_cache;
  cache_write : access_cache;
  cache_exec : access_cache;
  upcall_slots : (int * int, upcall) Hashtbl.t;
  pending : pending_upcall Ring_buffer.t;
  allows_rw : (int * int, allow_entry) Hashtbl.t;
  allows_ro : (int * int, allow_entry) Hashtbl.t;
  grants : (int, Univ.t) Hashtbl.t;
  mutable grant_bytes : int;
  mutable exec : execution option;
  mutable p_state : state;
  mutable restarts : int;
  mutable syscalls : int;
  syscalls_by_class : (int, int) Hashtbl.t;
  mutable grant_enters : int;
  mutable p_obs : Tock_obs.Ctx.t;
      (* Kernel-installed observability context; [Ctx.disabled] until the
         owning kernel adopts the process, so recording is always safe. *)
  p_permissions : (int * int) list option;
  p_storage : (int * int list) option;
  p_tbf_flags : int;
  mutable p_ckpt : int;
      (* Resumable-app checkpoint cursor: 0 = never checkpointed; apps
         that support freeze/thaw record their loop position here before
         each long sleep (see {!Tock_userland.Emu.checkpoint}). Part of
         the board witness. *)
  mutable p_resume_alarm : (int * int) option;
      (* (reference, dt) of the armed alarm a frozen process was
         sleeping on; installed by [Kernel.thaw] before the app's
         factory re-runs, consumed by the app's resume prologue. *)
  mutable p_at_sleep : bool;
      (* True only while the app is suspended in its post-checkpoint
         protocol sleep ([Libtock_sync.checkpoint_sleep] /
         [resume_sleep]) — the one suspension point the thaw
         fast-forward can faithfully rebuild. A freeze that catches a
         live app anywhere else (mid-I/O wait, console busy-retry nap)
         is witnessable but not thawable. *)
  mutable p_bridge : bridge option;
}

let dummy_pending =
  { pu_driver = 0; pu_subscribe = 0; pu_upcall = null_upcall; pu_args = (0, 0, 0) }

let create ~id ~name ~ram_base ~ram_size ~initial_app_break ~flash_base ~flash
    ~mpu ~mpu_config ~permissions ~storage ~tbf_flags =
  let ram_end = ram_base + ram_size in
  if initial_app_break < ram_base || initial_app_break > ram_end then
    invalid_arg "Process.create: bad initial app break";
  {
    p_id = id;
    p_name = name;
    ram = Bytes.make ram_size '\x00';
    p_ram_base = ram_base;
    app_break = initial_app_break;
    (* Grants grow down from the very top of the block; the MPU's
       initial kernel-memory reserve is advisory, not a hard floor. *)
    kernel_break = ram_end;
    initial_app_break;
    initial_kernel_break = ram_end;
    p_flash_base = flash_base;
    flash;
    mpu;
    mpu_config;
    cache_read = fresh_cache ();
    cache_write = fresh_cache ();
    cache_exec = fresh_cache ();
    upcall_slots = Hashtbl.create 16;
    pending = Ring_buffer.create ~capacity:upcall_queue_capacity ~dummy:dummy_pending;
    allows_rw = Hashtbl.create 16;
    allows_ro = Hashtbl.create 16;
    grants = Hashtbl.create 8;
    grant_bytes = 0;
    exec = None;
    p_state = Unstarted;
    restarts = 0;
    syscalls = 0;
    syscalls_by_class = Hashtbl.create 8;
    grant_enters = 0;
    p_obs = Tock_obs.Ctx.disabled;
    p_permissions = permissions;
    p_storage = storage;
    p_tbf_flags = tbf_flags;
    p_ckpt = 0;
    p_resume_alarm = None;
    p_at_sleep = false;
    p_bridge = None;
  }

let set_execution t e = t.exec <- Some e

let set_obs t ctx = t.p_obs <- ctx

let obs t = t.p_obs

let id t = t.p_id

let name t = t.p_name

let state t = t.p_state

let set_state t s = t.p_state <- s

let tbf_flags t = t.p_tbf_flags

let ram_base t = t.p_ram_base

let ram_end t = t.p_ram_base + Bytes.length t.ram

let app_break t = t.app_break

let kernel_break t = t.kernel_break

let flash_base t = t.p_flash_base

let flash_end t = t.p_flash_base + Bytes.length t.flash

let flash_image t = t.flash

let brk t addr =
  if addr < t.p_ram_base || addr > t.kernel_break then Error Error.NOMEM
  else
    match
      Tock_hw.Mpu.update_app_memory_region t.mpu t.mpu_config ~app_break:addr
        ~kernel_break:t.kernel_break
    with
    | Ok () ->
        t.app_break <- addr;
        Ok ()
    | Error _ -> Error Error.NOMEM

let sbrk t delta =
  let old = t.app_break in
  Result.map (fun () -> old) (brk t (old + delta))

let allocate_grant_bytes t n =
  assert (n >= 0);
  let new_break = t.kernel_break - n in
  (* The MPU app region must still fit below the new kernel break. *)
  if new_break < t.app_break then false
  else
    match
      Tock_hw.Mpu.update_app_memory_region t.mpu t.mpu_config
        ~app_break:t.app_break ~kernel_break:new_break
    with
    | Ok () ->
        t.kernel_break <- new_break;
        t.grant_bytes <- t.grant_bytes + n;
        true
    | Error _ -> false

let grant_bytes_used t = t.grant_bytes

let mem_view t ~addr ~len =
  if len < 0 then None
  else if addr >= t.p_ram_base && addr + len <= ram_end t then
    Some (`Ram (addr - t.p_ram_base))
  else if addr >= t.p_flash_base && addr + len <= flash_end t then
    Some (`Flash (addr - t.p_flash_base))
  else None

let ram_bytes t = t.ram

let check_access t ~addr ~len kind =
  if len < 0 then false
  else if len = 0 then true
  else begin
    let c =
      match kind with
      | `Read -> t.cache_read
      | `Write -> t.cache_write
      | `Execute -> t.cache_exec
    in
    let gen = Tock_hw.Mpu.generation t.mpu_config in
    if c.c_gen = gen && addr >= c.c_lo && addr + len <= c.c_hi then true
    else begin
      let granted =
        match
          Tock_hw.Mpu.check_with_range t.mpu t.mpu_config ~addr ~len kind
        with
        | Some (lo, hi) ->
            c.c_lo <- lo;
            c.c_hi <- hi;
            c.c_gen <- gen;
            true
        | None -> false
      in
      (* Slow path only: cache hits are the data-plane common case and
         must stay three compares. *)
      let tr = t.p_obs.Tock_obs.Ctx.trace in
      if Tock_obs.Trace.on tr then begin
        let text =
          match (kind, granted) with
          | `Read, true -> "read"
          | `Write, true -> "write"
          | `Execute, true -> "exec"
          | `Read, false -> "read denied"
          | `Write, false -> "write denied"
          | `Execute, false -> "exec denied"
        in
        Tock_obs.Trace.emit tr
          ~ts:(Tock_obs.Ctx.now t.p_obs)
          ~tid:t.p_id Tock_obs.Trace.Mpu_check Tock_obs.Trace.Instant ~arg:addr
          ~text
      end;
      granted
    end
  end

(* ---- upcalls ---- *)

let subscribe_swap t ~driver ~subscribe_num up =
  let key = (driver, subscribe_num) in
  let old =
    Option.value (Hashtbl.find_opt t.upcall_slots key) ~default:null_upcall
  in
  Hashtbl.replace t.upcall_slots key up;
  old

let get_subscribed t ~driver ~subscribe_num =
  Option.value
    (Hashtbl.find_opt t.upcall_slots (driver, subscribe_num))
    ~default:null_upcall

let enqueue_upcall t ~driver ~subscribe_num ~args =
  let up = get_subscribed t ~driver ~subscribe_num in
  (* A process parked in yield-wait-for or a blocking command receives the
     completion's arguments directly in registers — no upcall function is
     invoked — so a null subscription must not swallow it. Everywhere
     else, scheduling on a null upcall is an accepted no-op (Tock). *)
  let directly_awaited =
    match t.p_state with
    | Yielded_for w -> w.driver = driver && w.subscribe_num = subscribe_num
    | Blocked_command w -> w.driver = driver && w.subscribe_num = subscribe_num
    | _ -> false
  in
  if up.fnptr = 0 && not directly_awaited then true
  else
    Ring_buffer.push t.pending
      { pu_driver = driver; pu_subscribe = subscribe_num; pu_upcall = up;
        pu_args = args }

let pop_upcall t = Ring_buffer.pop t.pending

let pop_upcall_for t ~driver ~subscribe_num =
  Ring_buffer.find_remove t.pending (fun pu ->
      pu.pu_driver = driver && pu.pu_subscribe = subscribe_num)

let has_upcall_for t ~driver ~subscribe_num =
  let found = ref false in
  Ring_buffer.iter t.pending (fun pu ->
      if pu.pu_driver = driver && pu.pu_subscribe = subscribe_num then
        found := true);
  !found

let has_pending_upcalls t = not (Ring_buffer.is_empty t.pending)

let iter_subscriptions t f =
  Hashtbl.iter
    (fun (driver, subscribe_num) up -> f ~driver ~subscribe_num up)
    t.upcall_slots

let iter_pending_upcalls t f = Ring_buffer.iter t.pending f

let upcalls_dropped t = Ring_buffer.drops t.pending

(* ---- allows ---- *)

let allow_table t = function `Ro -> t.allows_ro | `Rw -> t.allows_rw

let allow_swap t ~kind ~driver ~allow_num entry =
  let tbl = allow_table t kind in
  let key = (driver, allow_num) in
  let old = Option.value (Hashtbl.find_opt tbl key) ~default:zero_allow in
  Hashtbl.replace tbl key entry;
  old

let allow_get t ~kind ~driver ~allow_num =
  Option.value
    (Hashtbl.find_opt (allow_table t kind) (driver, allow_num))
    ~default:zero_allow

let ranges_overlap a b =
  a.a_len > 0 && b.a_len > 0 && a.a_addr < b.a_addr + b.a_len
  && b.a_addr < a.a_addr + a.a_len

let allow_overlaps t ~kind entry =
  let tbl = allow_table t kind in
  Hashtbl.fold (fun _ e acc -> acc || ranges_overlap e entry) tbl false

(* Materialize the window at allow time: this is the single point where
   an (addr, len) pair crosses from process arithmetic into a checked
   byte window, so every later capsule access is already bounds-safe. *)
let make_allow_entry t ~addr ~len =
  if len = 0 then Some { a_addr = addr; a_len = 0; a_window = None }
  else
    match mem_view t ~addr ~len with
    | Some (`Ram off) ->
        Some
          { a_addr = addr; a_len = len;
            a_window = Some (Subslice.of_bytes_window t.ram ~pos:off ~len) }
    | Some (`Flash off) ->
        Some
          { a_addr = addr; a_len = len;
            a_window = Some (Subslice.of_bytes_window t.flash ~pos:off ~len) }
    | None -> None

let iter_allows t f =
  Hashtbl.iter
    (fun (driver, allow_num) e -> f ~kind:`Rw ~driver ~allow_num e)
    t.allows_rw;
  Hashtbl.iter
    (fun (driver, allow_num) e -> f ~kind:`Ro ~driver ~allow_num e)
    t.allows_ro

(* ---- grants ---- *)

let grant_table t = t.grants

(* ---- execution ---- *)

let run t ~fuel arg =
  match t.exec with
  | Some e -> e.step ~fuel arg
  | None -> invalid_arg "Process.run: no execution attached"

let destroy_execution t =
  (match t.exec with Some e -> e.destroy () | None -> ());
  t.exec <- None

let has_execution t = t.exec <> None

(* ---- lifecycle ---- *)

let note_restart t = t.restarts <- t.restarts + 1

let restart_count t = t.restarts

let reset_syscall_state t =
  Hashtbl.reset t.upcall_slots;
  Ring_buffer.clear t.pending;
  Hashtbl.reset t.allows_rw;
  Hashtbl.reset t.allows_ro;
  Hashtbl.reset t.grants;
  t.grant_bytes <- 0;
  t.app_break <- t.initial_app_break;
  t.kernel_break <- t.initial_kernel_break;
  t.p_ckpt <- 0;
  t.p_resume_alarm <- None;
  t.p_at_sleep <- false;
  Bytes.fill t.ram 0 (Bytes.length t.ram) '\x00';
  ignore
    (Tock_hw.Mpu.update_app_memory_region t.mpu t.mpu_config
       ~app_break:t.app_break ~kernel_break:t.kernel_break)

let note_syscall t ~class_num =
  t.syscalls <- t.syscalls + 1;
  let cur = Option.value (Hashtbl.find_opt t.syscalls_by_class class_num) ~default:0 in
  Hashtbl.replace t.syscalls_by_class class_num (cur + 1)

let note_grant_enter t = t.grant_enters <- t.grant_enters + 1

let grant_enter_count t = t.grant_enters

let mpu_generation t = Tock_hw.Mpu.generation t.mpu_config

let mpu_scan_count t = Tock_hw.Mpu.scan_count t.mpu_config

let syscall_count t = t.syscalls

let syscall_count_by_class t ~class_num =
  Option.value (Hashtbl.find_opt t.syscalls_by_class class_num) ~default:0

let permissions t = t.p_permissions

let storage_ids t = t.p_storage

let command_allowed t ~driver ~command_num =
  match t.p_permissions with
  | None -> true
  | Some perms -> (
      match List.assoc_opt driver perms with
      | None -> false
      | Some mask ->
          let bit = if command_num >= 32 then 31 else command_num in
          mask land (1 lsl bit) <> 0)

(* ---- freeze/thaw support ----

   Direct state materialization: [Kernel.thaw] rebuilds a board from
   its construction recipe and then patches each process to the frozen
   image. These helpers exist only for that path (and the restart path
   for the checkpoint fields); none of them is reachable from the
   syscall ABI. *)

let checkpoint t = t.p_ckpt

let set_checkpoint t i = t.p_ckpt <- i

let resume_alarm t = t.p_resume_alarm

let set_resume_alarm t v = t.p_resume_alarm <- v

let take_resume_alarm t =
  let v = t.p_resume_alarm in
  t.p_resume_alarm <- None;
  v

let at_sleep t = t.p_at_sleep

let set_at_sleep t v = t.p_at_sleep <- v

let set_bridge t b = t.p_bridge <- Some b

let bridge t = t.p_bridge

let iter_syscall_classes t f =
  Hashtbl.iter (fun class_num count -> f ~class_num ~count) t.syscalls_by_class

let restore_syscall_class t ~class_num ~count =
  Hashtbl.replace t.syscalls_by_class class_num count

let restore_counters t ~restarts ~syscalls ~grant_enters =
  t.restarts <- restarts;
  t.syscalls <- syscalls;
  t.grant_enters <- grant_enters

let restore_mpu_scans t n = Tock_hw.Mpu.restore_scan_count t.mpu_config n

(* The access caches and the generation they were stamped at are real
   behavioral state: a warm cache skips the next region-table scan, and
   scan counts are observable through metrics. Freeze captures them and
   thaw puts them back (the thaw rebuild's own churn both bumps the
   generation and re-primes caches differently than the original
   history did). *)
let mpu_cache_state t =
  ( Tock_hw.Mpu.generation t.mpu_config,
    List.map
      (fun c -> (c.c_gen, c.c_lo, c.c_hi))
      [ t.cache_read; t.cache_write; t.cache_exec ] )

let restore_mpu_cache t ~generation ~caches =
  match caches with
  | [ r; w; x ] ->
      Tock_hw.Mpu.restore_generation t.mpu_config generation;
      List.iter2
        (fun c (g, lo, hi) ->
          c.c_gen <- g;
          c.c_lo <- lo;
          c.c_hi <- hi)
        [ t.cache_read; t.cache_write; t.cache_exec ]
        [ r; w; x ]
  | _ -> invalid_arg "Process.restore_mpu_cache: want exactly 3 entries"

let set_upcall_drops t n = Ring_buffer.set_drops t.pending n

let restore_breaks t ~app_break ~kernel_break =
  if
    app_break < t.p_ram_base || kernel_break > ram_end t
    || app_break > kernel_break
  then false
  else
    match
      Tock_hw.Mpu.update_app_memory_region t.mpu t.mpu_config ~app_break
        ~kernel_break
    with
    | Ok () ->
        t.app_break <- app_break;
        t.kernel_break <- kernel_break;
        true
    | Error _ -> false

let clear_syscall_tables t =
  Hashtbl.reset t.upcall_slots;
  Ring_buffer.clear t.pending;
  Hashtbl.reset t.allows_rw;
  Hashtbl.reset t.allows_ro;
  Hashtbl.reset t.syscalls_by_class

let restore_subscription t ~driver ~subscribe_num up =
  Hashtbl.replace t.upcall_slots (driver, subscribe_num) up

let restore_allow t ~kind ~driver ~allow_num ~addr ~len =
  match make_allow_entry t ~addr ~len with
  | Some e ->
      Hashtbl.replace (allow_table t kind) (driver, allow_num) e;
      true
  | None -> false

let restore_pending_upcall t pu = Ring_buffer.push t.pending pu
