(** Processes: hardware-isolated, preemptively scheduled applications
    (paper §2.3).

    A process owns a flash region (its TBF image) and a RAM block carved
    out by the MPU. The RAM block is split three ways, as in Tock:

    {v
    ram_base                     app_break        kernel_break     ram_end
      | app data / heap (app R/W) | unused         | grant region    |
      |<------- app accessible -->|                |<- kernel owned ->|
    v}

    [app_break] grows upward via the [brk]/[sbrk] memops; [kernel_break]
    grows downward as grants are allocated. They may never cross — that
    single invariant is what makes the kernel heapless-safe: a greedy app
    (or the grants opened on its behalf) can exhaust only its own block
    (paper §2.4).

    Execution is abstract: the kernel resumes a process and receives a
    {!trap} (a raw-register syscall, a fault, or timeslice expiry). The
    userland emulator provides the {!execution} implementation; the kernel
    never sees it — mirroring the real hardware boundary where the kernel
    only observes trap frames. *)

type id = int

type fault_reason =
  | Mpu_violation of string
  | Bad_syscall of string
  | App_panic of string

type state =
  | Unstarted
  | Runnable
  | Yielded          (** blocked in yield-wait *)
  | Yielded_for of { driver : int; subscribe_num : int }
  | Blocked_command of { driver : int; subscribe_num : int }
      (** parked by the blocking-command extension *)
  | Faulted of fault_reason
  | Terminated of { code : int }
  | Stopped of state  (** frozen by management tooling; payload = prior state *)

type trap =
  | Trap_syscall of int array  (** 5 raw registers, see {!Syscall} *)
  | Trap_fault of fault_reason
  | Trap_timeslice_expired

type resume_arg =
  | Rstart
  | Rcontinue
      (** resume after timeslice expiry (the suspension point was not a
          syscall, so there is no value to deliver) *)
  | Rsyscall_ret of int array  (** 4 raw registers *)
  | Rupcall of {
      fnptr : int;
      appdata : int;
      arg0 : int;
      arg1 : int;
      arg2 : int;
    }  (** deliver a queued upcall out of yield-wait *)

type execution = {
  step : fuel:int -> resume_arg -> trap * int;
      (** Run until trap or fuel exhaustion; returns (trap, cycles used). *)
  destroy : unit -> unit;
      (** Drop the suspended continuation (process kill/restart). *)
}

type upcall = { fnptr : int; appdata : int }

val null_upcall : upcall

type pending_upcall = {
  pu_driver : int;
  pu_subscribe : int;
  pu_upcall : upcall;
  pu_args : int * int * int;
}

type allow_entry = { a_addr : int; a_len : int; a_window : Subslice.t option }
(** An allowed buffer. [a_window] is the zero-copy window over process
    memory materialized at allow time ({!make_allow_entry}); [None] iff
    the allow is zero-length (Tock 2.0 revocation). *)

type t

(** {2 Construction (trusted: kernel/loader only)} *)

val create :
  id:id ->
  name:string ->
  ram_base:int ->
  ram_size:int ->
  initial_app_break:int ->
  flash_base:int ->
  flash:bytes ->
  mpu:Tock_hw.Mpu.t ->
  mpu_config:Tock_hw.Mpu.config ->
  permissions:(int * int) list option ->
  storage:(int * int list) option ->
  tbf_flags:int ->
  t

val set_execution : t -> execution -> unit

val set_obs : t -> Tock_obs.Ctx.t -> unit
(** Install the owning kernel's observability context (trace buffer,
    metrics registry, clock). Defaults to {!Tock_obs.Ctx.disabled}, so
    an unadopted process records nothing. *)

val obs : t -> Tock_obs.Ctx.t

val id : t -> id

val name : t -> string

val state : t -> state

val set_state : t -> state -> unit

val tbf_flags : t -> int

(** {2 Memory} *)

val ram_base : t -> int

val ram_end : t -> int

val app_break : t -> int

val kernel_break : t -> int

val flash_base : t -> int

val flash_end : t -> int

val flash_image : t -> bytes

val brk : t -> int -> (unit, Error.t) result
(** Move the app break to an absolute address (memop 0). Updates the MPU
    app region; NOMEM if it would reach the grant region or the MPU
    granularity cannot honor it. *)

val sbrk : t -> int -> (int, Error.t) result
(** Grow/shrink by a delta (memop 1); returns the previous break. *)

val allocate_grant_bytes : t -> int -> bool
(** Move [kernel_break] down to reserve grant memory; false = NOMEM. *)

val grant_bytes_used : t -> int

val mem_view : t -> addr:int -> len:int -> [ `Ram of int | `Flash of int ] option
(** Resolve an absolute address range to an offset in the process RAM or
    flash image; [None] if it straddles or escapes both. This is the
    kernel-side translation used to materialize allow buffers. *)

val ram_bytes : t -> bytes
(** Raw RAM backing store (trusted code only). *)

val check_access : t -> addr:int -> len:int -> [ `Read | `Write | `Execute ] -> bool
(** The MPU check applied to app-mode accesses. *)

(** {2 Syscall state: upcalls} *)

val subscribe_swap : t -> driver:int -> subscribe_num:int -> upcall -> upcall
(** Install an upcall, returning the previous one (Tock 2.0 swap
    semantics; the first swap returns {!null_upcall}). *)

val get_subscribed : t -> driver:int -> subscribe_num:int -> upcall

val enqueue_upcall :
  t -> driver:int -> subscribe_num:int -> args:int * int * int -> bool
(** Queue a pending upcall for delivery at the next yield. Scheduling on a
    null subscription silently succeeds without enqueueing (as in Tock).
    False only if the pending queue overflowed. *)

val pop_upcall : t -> pending_upcall option

val pop_upcall_for : t -> driver:int -> subscribe_num:int -> pending_upcall option

val has_upcall_for : t -> driver:int -> subscribe_num:int -> bool

val has_pending_upcalls : t -> bool

val iter_subscriptions :
  t -> (driver:int -> subscribe_num:int -> upcall -> unit) -> unit
(** Iterate installed upcall subscriptions (unspecified order). *)

val iter_pending_upcalls : t -> (pending_upcall -> unit) -> unit
(** Iterate queued-but-undelivered upcalls in delivery (FIFO) order. *)

val upcalls_dropped : t -> int

(** {2 Syscall state: allows} *)

val allow_swap :
  t ->
  kind:[ `Ro | `Rw ] ->
  driver:int ->
  allow_num:int ->
  allow_entry ->
  allow_entry
(** Swap semantics; the zero entry [{a_addr = 0; a_len = 0}] is the
    initial/revoked state. *)

val allow_get : t -> kind:[ `Ro | `Rw ] -> driver:int -> allow_num:int -> allow_entry

val allow_overlaps : t -> kind:[ `Ro | `Rw ] -> allow_entry -> bool
(** Does the entry overlap any *other* currently-allowed buffer of that
    kind? (Paper §5.1.1: mutable aliasing detection.) *)

val make_allow_entry : t -> addr:int -> len:int -> allow_entry option
(** Materialize an allow entry: resolve the range to process RAM or
    flash and build the base-bounded window capsules will operate on in
    place. [None] if the range escapes process memory; zero-length
    ranges yield an entry with no window. The kernel calls this after
    policy validation; it is also the unit the iopath micro-bench
    measures as "allow-window setup". *)

val iter_allows : t -> (kind:[ `Ro | `Rw ] -> driver:int -> allow_num:int -> allow_entry -> unit) -> unit

(** {2 Grant value store} *)

val grant_table : t -> (int, Univ.t) Hashtbl.t

(** {2 Execution} *)

val run : t -> fuel:int -> resume_arg -> trap * int
(** Resume; raises [Invalid_argument] if no execution is attached. *)

val destroy_execution : t -> unit

val has_execution : t -> bool

(** {2 Lifecycle bookkeeping} *)

val note_restart : t -> unit

val restart_count : t -> int

val reset_syscall_state : t -> unit
(** Clear upcalls/allows/grants (on restart). Grant bytes return to the
    pool; the break resets to its initial position. *)

val note_syscall : t -> class_num:int -> unit

val note_grant_enter : t -> unit

val grant_enter_count : t -> int

val mpu_generation : t -> int
(** Current MPU configuration generation for this process (bumped on
    every region mutation). *)

val mpu_scan_count : t -> int
(** Region-table scans performed on behalf of this process, i.e. MPU
    check-cache misses (see {!check_access}). *)

val syscall_count : t -> int

val syscall_count_by_class : t -> class_num:int -> int

val permissions : t -> (int * int) list option

val storage_ids : t -> (int * int list) option
(** Persistent-storage ACL from the TBF: (write_id, readable ids). *)

val command_allowed : t -> driver:int -> command_num:int -> bool
(** TBF permission check: with no permissions element every driver is
    allowed; otherwise the driver must be listed and the command bit set
    (command numbers >= 32 share the top bit, a simplification). *)

(** {2 Freeze/thaw support}

    Process executions are effect continuations and cannot be
    serialized. Direct board freeze/thaw ({!Tock.Kernel.freeze} /
    {!Tock.Kernel.thaw}) instead re-runs the app factory on a fresh
    board and patches the process back to the frozen image; everything
    below exists for that path only — none of it is reachable from the
    syscall ABI. *)

type emu_residue = {
  er_alloc_next : int;
  er_next_fn : int;
  er_scratch : (string * (int * int)) list;  (** tag -> (addr, size) *)
}
(** The userland emulator's data state beside the continuation: bump
    allocator cursor, upcall function-id counter, named scratch
    buffers. *)

type bridge = {
  br_residue : unit -> emu_residue;
  br_set_residue : emu_residue -> unit;
  br_remap_upcall : old_id:int -> new_id:int -> bool;
}
(** Closures the emulator installs over its private state so the kernel
    can freeze/thaw it without depending on the userland layer.
    [br_remap_upcall] rebinds the closure under a live upcall function
    id to the id recorded in the frozen image. *)

val checkpoint : t -> int
(** Resumable-app cursor: 0 until the app first checkpoints. Witnessed
    and restored by freeze/thaw; reset on restart. *)

val set_checkpoint : t -> int -> unit

val resume_alarm : t -> (int * int) option

val set_resume_alarm : t -> (int * int) option -> unit
(** The (reference, dt) the frozen process was sleeping on; installed
    by thaw before the factory re-runs. *)

val take_resume_alarm : t -> (int * int) option

val at_sleep : t -> bool
(** True only while the app is suspended in its post-checkpoint
    protocol sleep — the one suspension point a thawed factory's
    fast-forward re-enters exactly. [Kernel.thaw] refuses a witness
    whose live processes were frozen anywhere else (mid-I/O wait,
    busy-retry nap): every witnessed byte can match there while the
    unserializable continuation differs, which would diverge later. *)

val set_at_sleep : t -> bool -> unit

val set_bridge : t -> bridge -> unit

val bridge : t -> bridge option

val iter_syscall_classes : t -> (class_num:int -> count:int -> unit) -> unit

val restore_syscall_class : t -> class_num:int -> count:int -> unit

val restore_counters :
  t -> restarts:int -> syscalls:int -> grant_enters:int -> unit

val restore_mpu_scans : t -> int -> unit
(** Overwrite the MPU scan diagnostic ({!mpu_scan_count}) with the
    frozen value — thaw's own allow/break replumbing performs scans the
    original board never made. *)

val mpu_cache_state : t -> int * (int * int * int) list
(** (MPU generation, last-hit access caches as [(gen, lo, hi)] for
    read/write/execute). Warm caches skip region-table scans, and scans
    are observable through metrics, so this is witnessed state: a
    thawed board must continue with the exact cache validity the frozen
    board had. *)

val restore_mpu_cache :
  t -> generation:int -> caches:(int * int * int) list -> unit
(** Put back what {!mpu_cache_state} captured (exactly 3 cache
    entries). *)

val set_upcall_drops : t -> int -> unit

val restore_breaks : t -> app_break:int -> kernel_break:int -> bool
(** Set both breaks and update the MPU app region; false if the breaks
    are outside the RAM block, crossed, or rejected by the MPU. *)

val clear_syscall_tables : t -> unit
(** Drop subscriptions, pending upcalls, allows and per-class syscall
    counts (not grants, counters, or RAM) before wholesale restore. *)

val restore_subscription : t -> driver:int -> subscribe_num:int -> upcall -> unit

val restore_allow :
  t -> kind:[ `Ro | `Rw ] -> driver:int -> allow_num:int -> addr:int -> len:int -> bool
(** Rematerialize an allow window at the frozen coordinates; false if
    the range no longer resolves (corrupt witness). *)

val restore_pending_upcall : t -> pending_upcall -> bool
