(** The Tock kernel: main loop, system-call dispatch, process lifecycle
    (paper §2, §3.3).

    One kernel instance runs per chip. The main loop mirrors Tock's: serve
    interrupts, then deferred calls, then let the scheduler pick a
    process; when nothing is runnable and no kernel work is pending, put
    the CPU into deep sleep until the next hardware event — the
    "asynchronous all the way down" design whose energy benefit the
    [e-async-sleep] experiment measures.

    System calls arrive as raw trap registers and leave as raw return
    registers (see {!Syscall}); the kernel owns upcall subscriptions and
    allow buffers with Tock 2.0 swapping semantics, enforces TBF
    permissions, applies the configured aliasing policy to overlapping
    allows (paper §5.1.1), and optionally implements the blocking-command
    extension (the Ti50 fork feature, paper §3.2).

    Capsules access process resources exclusively through the closure-
    scoped [with_allow_*] / {!schedule_upcall} API — the OCaml rendering
    of "capsules can access them only through temporary references in
    closures" (paper §3.3.2). *)

type t

type fault_policy =
  | Panic_on_fault
  | Restart_on_fault of int  (** maximum restarts per process *)
  | Stop_on_fault

type aliasing_policy =
  | Cell_semantics
      (** accept overlapping buffers, count them (Tock's &[Cell<u8>]
          solution) *)
  | Reject_overlap  (** refuse with INVAL (the runtime-check alternative) *)

type config = {
  scheduler : Scheduler.t;
  fault_policy : fault_policy;
  aliasing_policy : aliasing_policy;
  blocking_commands : bool;  (** enable the Command_blocking extension *)
  max_processes : int;
  ram_base : int;   (** base address of the RAM pool for processes *)
  ram_size : int;   (** total process RAM (the board's SRAM budget) *)
}

val default_config : unit -> config
(** Round-robin, restart-on-fault (3), cell semantics, no blocking
    commands, 8 processes, 128 kB RAM at 0x2000_0000. *)

(** Compatibility view over the kernel's metrics registry: every field
    mirrors a [kernel.*] counter (see {!metrics}). {!stats} builds a
    fresh record per call — mutating it affects nothing. *)
type stats = {
  mutable syscalls : int;
  mutable context_switches : int;
  mutable upcalls_delivered : int;
  mutable sleeps : int;
  mutable loop_iterations : int;
  mutable aliased_allows : int;
  mutable zero_len_allows : int;
  mutable overlap_rejected : int;
  mutable faults : int;
  mutable restarts : int;
  mutable filtered_commands : int;
}

exception Panic of string
(** Raised on kernel panics (e.g. fault with [Panic_on_fault]). *)

val create : ?config:config -> Tock_hw.Chip.t -> t

val chip : t -> Tock_hw.Chip.t

val sim : t -> Tock_hw.Sim.t

val config : t -> config

val stats : t -> stats

(** {2 Observability}

    Each kernel owns a {!Tock_obs.Metrics} registry — separate from the
    Sim's hardware-side registry, so boards sharing a Sim (radio groups)
    keep distinct per-board series. Series families:
    - [kernel.*] counters (syscalls, context_switches, faults, ...);
    - [kernel.syscall_cycles.<class>] latency histograms;
    - [driver.<name>.{commands,cycles}] per-driver attribution;
    - [process.<name>.*] per-process cycles counter plus gauges
      published at snapshot time. *)

val metrics : t -> Tock_obs.Metrics.t

val metrics_snapshot : t -> Tock_obs.Metrics.snapshot
(** Runs the registry's sync hooks (publishing per-process gauges) and
    returns the sorted snapshot. *)

val obs : t -> Tock_obs.Ctx.t
(** The kernel's trace buffer (shared with its Sim), metrics registry
    and clock, bundled for capsules constructed without a kernel
    handle. *)

val deferred : t -> Deferred_call.t
(** The kernel's deferred-call manager (capsules register handles here at
    board-build time). *)

val set_fault_hook : t -> (Process.t -> Process.fault_reason -> unit) -> unit
(** Called on every process fault before the fault policy is applied —
    boards wire this to the debug writer to print the crash dump Tock
    prints on a process fault. *)

val set_syscall_trace :
  t -> (Process.t -> Syscall.call -> Syscall.ret option -> unit) option -> unit
(** strace-style tracing: called for every decoded system call with its
    immediate return ([None] for calls that block or kill the process).
    [None] disables tracing. *)

(** {2 Drivers} *)

val register_driver : t -> Driver.t -> unit
(** At most one driver per driver number; re-registration replaces. *)

val find_driver : t -> int -> Driver.t option

val register_grant :
  t ->
  name:string ->
  preallocate:(Process.t -> bool) ->
  is_allocated:(Process.t -> bool) ->
  unit
(** Declare a named grant region for freeze/thaw: {!freeze} records
    which registered grants each process holds, and {!thaw}
    preallocates them (in witnessed order) so the grant-region layout —
    and thus [kernel_break] — matches the frozen image. Capsules call
    this from [create] with {!Grant.preallocate}/{!Grant.is_allocated}
    closures. Re-registration under the same name replaces. *)

val register_freezer :
  t ->
  name:string ->
  phase:[ `Pre | `Post ] ->
  save:(Buffer.t -> unit) ->
  load:(string -> (unit, string) result) ->
  unit
(** Declare a named board-state component beyond the kernel's own reach
    (virtual-alarm order and arming, uart capture, dirty flash pages).
    {!freeze} appends every registered component's [save] bytes;
    {!thaw} feeds them back — [`Pre] loads run before the resume
    prologues, [`Post] loads after the wholesale state patch. A [load]
    returning [Error] aborts the thaw (the caller falls back to
    replay). *)

(** Length-prefixed binary codec for {!register_freezer} sections (the
    same one the witness itself uses): 64-bit LE ints, length-prefixed
    strings, and a bounds-checked reader whose failures surface as
    [Error] via {!Witness.guard} rather than exceptions. *)
module Witness : sig
  exception Corrupt of string

  val corrupt : ('a, unit, string, 'b) format4 -> 'a
  (** Raise {!Corrupt} with a formatted diagnostic. *)

  val add_int : Buffer.t -> int -> unit

  val add_string : Buffer.t -> string -> unit

  type reader

  val reader : string -> reader

  val int : reader -> int

  val int64 : reader -> int64

  val raw : reader -> int -> string

  val string : reader -> string

  val at_end : reader -> bool

  val guard : (unit -> 'a) -> ('a, string) result
  (** Run a decoder, catching {!Corrupt}. *)
end

(** {2 Processes (privileged)} *)

val create_process :
  t ->
  cap:Capability.process_management ->
  name:string ->
  flash_base:int ->
  flash:bytes ->
  min_ram:int ->
  ?permissions:(int * int) list ->
  ?storage:int * int list ->
  ?tbf_flags:int ->
  factory:(Process.t -> Process.execution) ->
  unit ->
  (Process.t, Error.t) result
(** Carve a RAM block via the chip's MPU, allocate a flash region, attach
    a fresh execution, and enter the process in the table ([Runnable] if
    the TBF flags enable it, else [Unstarted]). NOMEM when the RAM pool or
    process table is full. *)

val processes : t -> Process.t list

val find_process : t -> Process.id -> Process.t option

val find_process_by_name : t -> string -> Process.t option

val start_process : t -> cap:Capability.process_management -> Process.id -> (unit, Error.t) result
(** Unstarted/Stopped -> Runnable. *)

val stop_process : t -> cap:Capability.process_management -> Process.id -> (unit, Error.t) result

val restart_process : t -> cap:Capability.process_management -> Process.id -> (unit, Error.t) result
(** Reset syscall state and memory, attach a fresh execution. *)

val terminate_process : t -> cap:Capability.process_management -> Process.id -> (unit, Error.t) result

(** {2 Capsule-facing process resources} *)

val schedule_upcall :
  t -> Process.id -> driver:int -> subscribe_num:int -> args:int * int * int -> bool
(** Queue an upcall for delivery at the process's next yield. True unless
    the process is gone or its queue overflowed (null subscriptions
    swallow silently, as in Tock). *)

val with_allow_rw :
  t ->
  Process.id ->
  driver:int ->
  allow_num:int ->
  (Subslice.t -> 'a) ->
  ('a, Error.t) result
(** Run a closure over the process's currently-allowed read-write buffer.
    The subslice window covers exactly the allowed range; it aliases
    process memory and must not be stashed (closure-scoped access, paper
    §3.3.2). With nothing allowed the closure sees a zero-length window
    (the "dummy empty holder" of paper §3.3.2). Error: NODEVICE (process
    gone). *)

val with_allow_ro :
  t ->
  Process.id ->
  driver:int ->
  allow_num:int ->
  (Subslice.t -> 'a) ->
  ('a, Error.t) result

val allow_size : t -> Process.id -> kind:[ `Ro | `Rw ] -> driver:int -> allow_num:int -> int
(** Length of the currently shared buffer (0 if none). *)

val allow_window :
  t -> Process.id -> kind:[ `Ro | `Rw ] -> driver:int -> allow_num:int -> Subslice.t option
(** A {!Subslice.clone} of the currently-allowed window, reset to the
    full allowed range, for capsules that hold the buffer across a
    split-phase operation (zero-copy tx/feed paths). The clone shares
    the process's bytes — no copy — but narrows independently of the
    [with_allow_*] borrow, and its base bound still confines it to the
    allowed range. [None] if nothing (or zero length) is allowed. Note
    the Tock divergence: real Tock capsules copy out of the process
    buffer before a split-phase op; here the window stays live, so a
    process that re-allows or restarts mid-flight sees the in-place
    semantics documented in DESIGN.md. *)

val process_ids : t -> Process.id list
(** Live process ids (the capsule-visible analogue of grant iteration —
    Tock capsules can likewise enumerate their grant regions). *)

val process_state_of : t -> Process.id -> Process.state option

val process_name_of : t -> Process.id -> string option

(** {2 The main loop} *)

val step : t -> cap:Capability.main_loop -> [ `Worked | `Slept | `Stalled ]
(** One iteration: interrupts, deferred calls, then either run one
    process slice, sleep to the next hardware event, or report [`Stalled]
    (nothing runnable, no event pending — a finished simulation). *)

val run_to_deadline :
  t ->
  cap:Capability.main_loop ->
  deadline:int ->
  [ `Budget | `Asleep of int | `Stalled ]
(** Step until the sim clock reaches [deadline] (absolute cycles).
    Unlike {!run_until}, the kernel never deep-sleeps {e past} the
    deadline: when it goes idle with the next hardware event at
    [d >= deadline] it returns [`Asleep d] immediately, clock unmoved,
    so an outer cross-board scheduler can park the board and fast-forward
    it in O(1) (via {!sleep_to}) instead of walking the gap. Sleeps that
    end before [deadline] are taken internally, event-to-event.
    [`Budget] = the deadline was reached (a process slice may overshoot
    by up to one timeslice); [`Stalled] = idle with no event pending.
    The resulting board state is byte-identical for any chopping of a
    run into [run_to_deadline] quanta (interleaved with {!sleep_to} at
    the reported wake times) — the fleet determinism anchor. *)

val sleep_to : t -> cap:Capability.main_loop -> int -> unit
(** Metered idle sleep to an absolute cycle time: CPU powered down in
    the energy model, events due in the interval fire at their own
    deadlines, the sleep counter and trace span recorded — exactly the
    in-kernel idle path, callable from an outer scheduler. No-op (except
    firing already-due events) if the time is not in the future. *)

val run_cycles : t -> cap:Capability.main_loop -> int -> unit
(** Step until the sim clock has advanced by at least [n] cycles or the
    kernel stalls. *)

val run_until : t -> cap:Capability.main_loop -> ?max_cycles:int -> (unit -> bool) -> bool
(** Step until the predicate holds; false if it stalled or timed out
    first. Default [max_cycles]: 2_000_000_000. *)

val run_to_completion : t -> cap:Capability.main_loop -> ?max_cycles:int -> unit -> unit
(** Step until stalled (every process dead or blocked forever). *)

(** {2 Freeze / thaw (park/resume)}

    Process executions are effect continuations and cannot be
    serialized, so a parked board is captured as a compact byte
    {e witness} of its observable state. Two ways back:

    - {!restore} ({e replay}): rebuild the board from its deterministic
      construction recipe and re-run it to the witness clock using the
      same chopping-invariant stepping the fleet scheduler uses (see
      {!run_to_deadline}), then verify the re-taken witness
      byte-for-byte. O(elapsed cycles).
    - {!thaw} ({e direct materialization}): rebuild the board, let each
      resumable app's factory fast-forward through its checkpoint
      (re-entering the recorded sleep so the continuation suspends in
      the frozen shape), then patch everything else back from the
      witness bytes. O(state) — independent of how long the board ran.

    Witness format (v2, magic "TCKSNP02", all ints 64-bit LE): header
    clock/active/sleep + raw root-PRNG state; sorted live event-queue
    {e deadlines} (sequence numbers are allocation order and never
    survive a rebuild); [next_pid]/[ram_next]; per-process records
    (name, state, pending resume, counters, checkpoint, emulator
    residue, per-class syscall counts, allocated grant names, sorted
    subscriptions/allows, queued upcalls, sparse zero-elided RAM runs);
    named {!register_freezer} component sections; packed kernel +
    hardware metrics registries. *)

val freeze : ?buf:Buffer.t -> t -> string
(** Serialize the board's observable state (format above).
    Deterministic: two boards in byte-identical states produce equal
    witnesses. Runs the registries' snapshot hooks (same effect as
    {!metrics_snapshot}); does not advance the simulation. [buf], if
    given, is cleared and used as the scratch encoder (the fleet pools
    one per domain to avoid re-growing a fresh buffer per park). *)

val snapshot : t -> string
(** [freeze] without a pooled buffer (historical name). *)

val snapshot_clock : string -> (int, string) result
(** The sim clock a witness was taken at; [Error] if the string does
    not start with a witness header. *)

val replay_to : t -> cap:Capability.main_loop -> int -> unit
(** Drive the board to an absolute clock with [run_to_deadline] +
    [sleep_to] (stops early only on [`Stalled]). By the chopping
    invariance contract, the resulting state is byte-identical to any
    other valid stepping that reaches the same clock. *)

val restore : t -> cap:Capability.main_loop -> string -> (unit, string) result
(** [restore t ~cap w] replays a freshly-built board [t] to
    [snapshot_clock w] and verifies [snapshot t = w]. [Error] on a
    corrupt or truncated witness (with a decoder diagnostic, before any
    replay work), or on divergence (snapshot digests) — the latter
    means the board was not rebuilt from the same recipe, or
    determinism is broken. *)

val thaw : t -> cap:Capability.main_loop -> string -> (unit, string) result
(** [thaw t ~cap w] rehydrates a freshly-built board [t] directly from
    the witness bytes, without replay: preallocate witnessed grants and
    install resume alarms ([`Pre] freezer loads), warp the clock to the
    frozen instant, run each live process's factory prologue to
    quiescence (resumable apps skip completed iterations and re-enter
    the recorded sleep — see [Apps]), re-warp, patch processes
    wholesale (upcall-id remap, subscriptions, allows, pending upcalls,
    breaks, RAM, counters, emulator residue), run [`Post] freezer
    loads, verify the rebuilt event schedule against the witness, and
    overwrite both metrics registries. On success, [freeze t = w].
    [Error] — with the board left in an unspecified half-patched state
    that must be discarded — whenever anything fails to line up: a
    corrupt witness, a live process that never checkpointed
    (non-resumable app) or frozen in a non-[Yielded] suspension, an
    upcall id that cannot be remapped, registry series drift. Callers
    fall back to {!restore} on a fresh board. *)
