(** System call classes and the register-level ABI (Tock 2.0, TRD 104).

    Calls and returns are encoded to and from a 5-slot register file
    (class number + r0..r3), exactly as the real ABI packs them on
    Cortex-M/RISC-V. The userland library encodes calls and decodes
    returns; the kernel does the reverse — so the ABI layer is genuinely
    exercised (and round-trip property-tested) rather than modelled as a
    function call.

    The [Command_blocking] class is the *extension* Tock mainline never
    merged: the blocking command the Ti50 fork added to collapse the
    subscribe/command/yield/unsubscribe sequence into one call
    (paper §3.2). It is gated by kernel configuration. *)

type yield_kind =
  | Yield_no_wait
  | Yield_wait
  | Yield_wait_for of { driver : int; subscribe_num : int }

type call =
  | Yield of yield_kind
  | Subscribe of {
      driver : int;
      subscribe_num : int;
      upcall_fn : int;  (** function "pointer"; 0 = null upcall *)
      appdata : int;
    }
  | Command of { driver : int; command_num : int; arg1 : int; arg2 : int }
  | Allow_rw of { driver : int; allow_num : int; addr : int; len : int }
  | Allow_ro of { driver : int; allow_num : int; addr : int; len : int }
  | Memop of { op : int; arg : int }
  | Exit of { variant : int; code : int }
      (** variant 0 = terminate, 1 = restart *)
  | Command_blocking of {
      driver : int;
      command_num : int;
      arg1 : int;
      arg2 : int;
      subscribe_num : int;
          (** the completion upcall slot whose arguments become the return
              value *)
    }

type ret =
  | Failure of Error.t
  | Failure_u32 of Error.t * int
  | Failure_u32_u32 of Error.t * int * int
  | Success
  | Success_u32 of int
  | Success_u32_u32 of int * int
  | Success_u32_u32_u32 of int * int * int

val registers : int
(** 5: class + r0..r3. *)

val encode_call : call -> int array

val decode_call : int array -> (call, Error.t) result
(** INVAL on malformed encodings, NOSUPPORT on unknown classes. *)

val encode_ret : ret -> int array
(** 4 registers, TRD 104 variant tags (Failure = 0 ... Success = 128...). *)

val encode_ret_into : ret -> int array -> unit
(** Like {!encode_ret} but writes into a caller-owned 4-register array —
    the kernel's allocation-free per-syscall return path. The buffer must
    not be re-encoded before the process has decoded it.
    @raise Invalid_argument on a wrong-sized buffer. *)

val decode_ret : int array -> (ret, string) result

val pp_call : Format.formatter -> call -> unit

val pp_ret : Format.formatter -> ret -> unit

val ret_is_success : ret -> bool

(** {2 Memop operation numbers}

    [memop_brk] = 0, [memop_sbrk] = 1, [memop_flash_start] = 2,
    [memop_flash_end] = 3, [memop_ram_start] = 4, [memop_ram_end] = 5. *)

val memop_brk : int

val memop_sbrk : int

val memop_flash_start : int

val memop_flash_end : int

val memop_ram_start : int

val memop_ram_end : int
