type 'a t = {
  slots : 'a array;
  mutable head : int; (* next pop position *)
  mutable len : int;
  mutable drops : int;
}

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Ring_buffer.create";
  { slots = Array.make capacity dummy; head = 0; len = 0; drops = 0 }

let capacity t = Array.length t.slots

let length t = t.len

let is_empty t = t.len = 0

let is_full t = t.len = Array.length t.slots

let push t v =
  if is_full t then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    t.slots.((t.head + t.len) mod Array.length t.slots) <- v;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.slots.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.slots;
    t.len <- t.len - 1;
    Some v
  end

let peek t = if t.len = 0 then None else Some t.slots.(t.head)

let drops t = t.drops

let set_drops t n = t.drops <- n

let clear t =
  t.head <- 0;
  t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.slots.((t.head + i) mod Array.length t.slots)
  done

let find_remove t pred =
  let cap = Array.length t.slots in
  let found = ref None in
  let kept = ref [] in
  for i = 0 to t.len - 1 do
    let v = t.slots.((t.head + i) mod cap) in
    if !found = None && pred v then found := Some v else kept := v :: !kept
  done;
  match !found with
  | None -> None
  | Some v ->
      let kept = List.rev !kept in
      clear t;
      List.iter (fun x -> ignore (push t x)) kept;
      Some v

(* ---- byte ring with bulk transfers ---------------------------------- *)

module Bytes_ring = struct
  type t = {
    buf : bytes;
    mutable head : int; (* next pop position *)
    mutable len : int;
    mutable dropped : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Ring_buffer.Bytes_ring.create";
    { buf = Bytes.create capacity; head = 0; len = 0; dropped = 0 }

  let capacity t = Bytes.length t.buf

  let length t = t.len

  let free t = Bytes.length t.buf - t.len

  let is_empty t = t.len = 0

  let dropped t = t.dropped

  let clear t =
    t.head <- 0;
    t.len <- 0

  (* Append up to [len] bytes in at most two blits (the wrap). Stream
     semantics: a write that does not fit is accepted up to [free] and
     the overflow is dropped-new and counted, byte for byte. *)
  let push_slice t src ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length src then
      invalid_arg "Ring_buffer.Bytes_ring.push_slice";
    let cap = Bytes.length t.buf in
    let n = min len (free t) in
    if n > 0 then begin
      let tail = (t.head + t.len) mod cap in
      let first = min n (cap - tail) in
      Bytes.blit src pos t.buf tail first;
      if n > first then Bytes.blit src (pos + first) t.buf 0 (n - first);
      t.len <- t.len + n
    end;
    t.dropped <- t.dropped + (len - n);
    n

  let push_string t s =
    let cap = Bytes.length t.buf in
    let len = String.length s in
    let n = min len (free t) in
    if n > 0 then begin
      let tail = (t.head + t.len) mod cap in
      let first = min n (cap - tail) in
      String.blit s 0 t.buf tail first;
      if n > first then String.blit s first t.buf 0 (n - first);
      t.len <- t.len + n
    end;
    t.dropped <- t.dropped + (len - n);
    n

  (* Drain up to the window's length in at most two counted blits —
     this is what lets the debug writer hand a whole burst of queued
     messages to the UART as one batched transmit. *)
  let pop_into t (dst : Subslice.t) =
    let cap = Bytes.length t.buf in
    let n = min t.len (Subslice.length dst) in
    if n > 0 then begin
      let first = min n (cap - t.head) in
      Subslice.blit_from_bytes ~src:t.buf ~src_off:t.head dst ~dst_off:0
        ~len:first;
      if n > first then
        Subslice.blit_from_bytes ~src:t.buf ~src_off:0 dst ~dst_off:first
          ~len:(n - first);
      t.head <- (t.head + n) mod cap;
      t.len <- t.len - n
    end;
    n
end
