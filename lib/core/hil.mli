(** Hardware interface layer (HIL): the narrow, split-phase interfaces
    capsules program against (Fig. 2's boundary between capsules and
    trusted chip adaptors).

    Every long-running operation follows Tock's buffer-ownership protocol
    (paper §4.2): the caller passes a {!Subslice.t}, *conceptually moving
    ownership* into the driver; on error the buffer comes straight back in
    the [Error] value ([(code, buffer)]), otherwise it returns through the
    completion callback. Holding the buffer meanwhile is the adaptor's
    job, typically in a {!Cells.Take_cell}.

    Capsules must only touch hardware through these records — never
    through [Tock_hw] directly. That rule (checked by the test suite over
    the capsule sources) is the OCaml analogue of capsules being
    unsafe-free crates. *)

type alarm = {
  alarm_now : unit -> int;  (** current ticks (32-bit wrapping) *)
  alarm_frequency_hz : int;
  alarm_set : reference:int -> dt:int -> unit;
  alarm_disarm : unit -> unit;
  alarm_is_armed : unit -> bool;
  alarm_set_client : (unit -> unit) -> unit;
}

type uart = {
  uart_transmit : Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** Transmit the active window. *)
  uart_set_transmit_client : (Subslice.t -> unit) -> unit;
      (** Buffer returned with its window intact. *)
  uart_transmit_iov : Subslice.t array -> (unit, Error.t * Subslice.t array) result;
      (** Scatter-gather transmit: the windows are serialized back to
          back as one hardware operation with a single completion (the
          batched console drain). Ownership of the whole vector moves,
          as for single-buffer transmit. *)
  uart_set_transmit_iov_client : (Subslice.t array -> unit) -> unit;
  uart_receive : Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** Receive exactly the window length. *)
  uart_set_receive_client : (Subslice.t -> unit) -> unit;
  uart_abort_receive : unit -> unit;
}

type entropy = {
  entropy_request : count:int -> (unit, Error.t) result;
  entropy_set_client : (int array -> unit) -> unit;
}

type digest_mode = D_sha256 | D_hmac of bytes

type digest = {
  digest_set_mode : digest_mode -> (unit, Error.t) result;
  digest_add_data : Subslice.t -> (unit, Error.t * Subslice.t) result;
  digest_set_data_client : (Subslice.t -> unit) -> unit;
  digest_run : unit -> (unit, Error.t) result;
  digest_set_digest_client : (bytes -> unit) -> unit;
}

type aes_mode = A_ctr | A_ecb_encrypt | A_ecb_decrypt

type aes = {
  aes_set_key : bytes -> (unit, Error.t) result;
  aes_set_iv : bytes -> (unit, Error.t) result;
  aes_crypt : aes_mode -> Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** In-place transform of the window; result arrives via client. *)
  aes_set_client : (Subslice.t -> unit) -> unit;
}

type pke = {
  pke_verify :
    pubkey:bytes -> msg:bytes -> signature:bytes -> (unit, Error.t) result;
  pke_set_client : (bool -> unit) -> unit;
}

type flash_event =
  [ `Read_done of bytes
  | `Write_done of Subslice.t
  | `Program_done of Subslice.t array
  | `Erase_done ]

type flash = {
  flash_pages : int;
  flash_page_size : int;
  flash_read : page:int -> (unit, Error.t) result;
  flash_write : page:int -> Subslice.t -> (unit, Error.t * Subslice.t) result;
  flash_program :
    page:int -> off:int -> Subslice.t array ->
    (unit, Error.t * Subslice.t array) result;
      (** Scatter-gather program: the windows are laid end to end
          starting at byte [off] of [page] (NOR semantics — bits only
          clear), leaving the rest of the page untouched. One
          completion ([`Program_done]) per batch. This is the log-append
          primitive: no read-modify-write of the whole page. *)
  flash_erase : page:int -> (unit, Error.t) result;
  flash_set_client : (flash_event -> unit) -> unit;
  flash_read_sync : page:int -> bytes;
      (** Memory-mapped read (synchronous, allowed by the hardware). *)
}

type radio = {
  radio_transmit : dest:int -> Subslice.t -> (unit, Error.t * Subslice.t) result;
  radio_set_transmit_client : (Subslice.t -> unit) -> unit;
  radio_transmit_iov :
    dest:int -> Subslice.t array -> (unit, Error.t * Subslice.t array) result;
      (** Scatter-gather frame transmit: header, payload window(s) and
          trailer go to the radio as one frame without being gathered
          into a staging buffer first (the net-stack zero-copy tx
          path). *)
  radio_set_transmit_iov_client : (Subslice.t array -> unit) -> unit;
  radio_set_receive_client : (src:int -> bytes -> unit) -> unit;
  radio_start_listening : unit -> unit;
  radio_stop : unit -> unit;
  radio_addr : int;
}

type spi_device = {
  spi_transfer : Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** Full-duplex: the window is sent and overwritten with the
          response. *)
  spi_set_client : (Subslice.t -> unit) -> unit;
}

type i2c_device = {
  i2c_write : Subslice.t -> (unit, Error.t * Subslice.t) result;
  i2c_read : Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** Fill the window with a device read. *)
  i2c_write_read :
    write_len:int -> Subslice.t -> (unit, Error.t * Subslice.t) result;
      (** Send the first [write_len] bytes of the window, then fill the
          whole window with the response. *)
  i2c_set_client : ((Subslice.t, Error.t * Subslice.t) result -> unit) -> unit;
}

type adc = {
  adc_channels : int;
  adc_sample : channel:int -> (unit, Error.t) result;
  adc_set_client : (channel:int -> value:int -> unit) -> unit;
}

type gpio_pin = {
  pin_make_output : unit -> unit;
  pin_make_input : unit -> unit;
  pin_set : bool -> unit;
  pin_read : unit -> bool;
  pin_enable_interrupt : [ `Rising | `Falling | `Either ] -> unit;
  pin_disable_interrupt : unit -> unit;
  pin_set_client : (bool -> unit) -> unit;
}
