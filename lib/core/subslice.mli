(** SubSlice: a resizable window over a buffer (paper §4.2, Fig. 4).

    Split-phase kernel APIs pass whole-buffer ownership down driver
    stacks; each layer may need to operate on a *subset* (a packet
    payload, the bytes still to write) without forfeiting the rest of the
    buffer. A [Subslice.t] carries the full underlying buffer plus an
    active window; layers narrow the window with {!slice} and any holder
    can {!reset} back to the complete buffer before returning it upward.

    All indexed operations are window-relative and bounds-checked against
    the window, so a layer cannot reach bytes outside the range it was
    given (Tock gets this from slice types; we check dynamically and the
    invariant is property-tested). *)

type t

val of_bytes : bytes -> t
(** Window = entire buffer. The buffer is shared, not copied (ownership
    moves with the value, as in Tock). *)

val create : int -> t
(** Fresh zeroed buffer of the given size. *)

val length : t -> int
(** Active window length. *)

val full_length : t -> int
(** Underlying buffer length. *)

val slice : t -> pos:int -> len:int -> unit
(** Narrow the window to [pos, pos+len) *relative to the current window*.
    Raises [Invalid_argument] if outside the current window. *)

val slice_from : t -> int -> unit

val slice_to : t -> int -> unit

val reset : t -> unit
(** Restore the window to the whole underlying buffer. *)

val get : t -> int -> char

val set : t -> int -> char -> unit

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val blit_from_bytes : src:bytes -> src_off:int -> t -> dst_off:int -> len:int -> unit

val blit_to_bytes : t -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val copy_within : t -> t -> unit
(** Copy [min (length src) (length dst)] bytes between windows. *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Window-relative copy between two subslices, bounds-checked against
    both windows. This is the safe way to move bytes between buffers a
    layer only holds windows into — unlike {!underlying}, it cannot
    reach outside either window. *)

val to_bytes : t -> bytes
(** Copy of the active window. *)

val window : t -> int * int
(** (absolute offset, length) of the window in the underlying buffer. *)

val underlying : t -> bytes
(** The raw buffer — for trusted code (DMA models) only. *)

val fill : t -> char -> unit
(** Fill the active window. *)
