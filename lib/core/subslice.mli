(** SubSlice: a resizable window over a buffer (paper §4.2, Fig. 4).

    Split-phase kernel APIs pass whole-buffer ownership down driver
    stacks; each layer may need to operate on a *subset* (a packet
    payload, the bytes still to write) without forfeiting the rest of the
    buffer. A [Subslice.t] carries the full underlying buffer plus an
    active window; layers narrow the window with {!slice} and any holder
    can {!reset} back to the *base* window before returning it upward.

    The base window is fixed at construction: for {!of_bytes} it is the
    whole buffer, for {!of_bytes_window} an arbitrary range. This is how
    allowed process buffers stay sound when handed out zero-copy — a
    capsule holding a window over process RAM can narrow and reset at
    will but can never widen past the range the process allowed (§5.1).

    All indexed operations are window-relative and bounds-checked against
    the window, so a layer cannot reach bytes outside the range it was
    given (Tock gets this from slice types; we check dynamically and the
    invariant is property-tested).

    Every operation that copies window bytes between buffers is counted
    in module-wide copy counters; the iopath bench asserts these stay at
    0 across the zero-copy fast paths. *)

type t

val of_bytes : bytes -> t
(** Base window = entire buffer. The buffer is shared, not copied
    (ownership moves with the value, as in Tock). *)

val of_bytes_window : bytes -> pos:int -> len:int -> t
(** Base window = [pos, pos+len) of [buf]. {!reset} restores to this
    range, never the whole buffer. Raises [Invalid_argument] if the
    range is outside the buffer. *)

val create : int -> t
(** Fresh zeroed buffer of the given size. *)

val clone : t -> t
(** A new independent window record over the *same* bytes (no copy):
    same base, same current window, but narrowing/resetting the clone
    does not disturb the original. This is how capsules hold an allowed
    window across split-phase operations. *)

val length : t -> int
(** Active window length. *)

val full_length : t -> int
(** Base window length (= buffer length for {!of_bytes}). *)

val slice : t -> pos:int -> len:int -> unit
(** Narrow the window to [pos, pos+len) *relative to the current window*.
    Raises [Invalid_argument] if outside the current window. *)

val slice_from : t -> int -> unit

val slice_to : t -> int -> unit

val reset : t -> unit
(** Restore the window to the base window. *)

val get : t -> int -> char

val set : t -> int -> char -> unit

val get_u8 : t -> int -> int

val set_u8 : t -> int -> int -> unit

val blit_from_bytes : src:bytes -> src_off:int -> t -> dst_off:int -> len:int -> unit

val blit_to_bytes : t -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val copy_within : t -> t -> unit
(** Copy [min (length src) (length dst)] bytes between windows. *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Window-relative copy between two subslices, bounds-checked against
    both windows. This is the safe way to move bytes between buffers a
    layer only holds windows into — unlike {!underlying}, it cannot
    reach outside either window. *)

val to_bytes : t -> bytes
(** Copy of the active window. *)

val window : t -> int * int
(** (absolute offset, length) of the window in the underlying buffer. *)

val underlying : t -> bytes
(** The raw buffer — for trusted code (DMA models) only. *)

val fill : t -> char -> unit
(** Fill the active window. *)

(** {2 Copy accounting}

    Module-wide counters over {!blit_from_bytes}, {!blit_to_bytes},
    {!copy_within}, {!blit} and {!to_bytes}. Zero-length operations do
    not count. *)

val copy_count : unit -> int
(** Copies performed since the last {!reset_copy_counters}. *)

val copied_bytes : unit -> int
(** Bytes moved since the last {!reset_copy_counters}. *)

val reset_copy_counters : unit -> unit
