(** Grants: per-process kernel state without a kernel heap (paper §2.4).

    A capsule declares a grant once (type, byte size, initializer); the
    kernel then lazily allocates one instance *inside each process's own
    memory block* the first time the capsule enters the grant for that
    process. The bytes come out of the process's grant region (kernel
    break moves down), so a process that drives a capsule to allocate
    unboundedly only exhausts itself — the availability experiment
    [e-grant-exhaustion] measures exactly this.

    Entry is closure-scoped and guarded against reentrancy: entering a
    grant for a process while already inside it returns [ALREADY] (Tock
    makes this unrepresentable; we detect and refuse). Grant contents are
    dropped when the process restarts or dies, matching "application state
    does not outlast the process". *)

type 'a t

val create :
  cap:Capability.memory_allocation ->
  name:string ->
  size_bytes:int ->
  init:(unit -> 'a) ->
  'a t
(** [size_bytes] is what the instance costs a process's grant region —
    the accounting analogue of the Rust type's size. *)

val enter : 'a t -> Process.t -> ('a -> 'b) -> ('b, Error.t) result
(** Allocate-if-needed, then run the closure on the process's instance.
    Errors: NOMEM (grant region exhausted), ALREADY (reentrant entry). *)

val is_allocated : 'a t -> Process.t -> bool

val preallocate : 'a t -> Process.t -> bool
(** Allocate the instance for a process without entering it — no enter
    accounting, no trace event. Used by board thaw ({!Kernel.thaw}) to
    re-establish the grant layout recorded in a frozen image before the
    app's resume prologue runs; a no-op if already allocated. False =
    grant region exhausted. *)

val peek : 'a t -> Process.t -> 'a option
(** The process's instance if allocated, without allocating, entering,
    or counting anything — for freezer saves ({!Kernel.register_freezer}),
    which must not perturb the state they witness. *)

val size_bytes : 'a t -> int

val name : 'a t -> string

val reentries_refused : unit -> int
(** Global count of refused reentrant entries. *)
