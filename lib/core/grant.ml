type 'a entry = { value : 'a; mutable entered : bool }

type 'a t = {
  gid : int;
  g_name : string;
  size : int;
  init : unit -> 'a;
  key : 'a entry Univ.key;
}

(* Atomic: grants are created and entered from whichever domain runs the
   owning board (the fleet runner shards boards across domains). *)
let next_gid = Atomic.make 0

let refused = Atomic.make 0

let create ~cap:_ ~name ~size_bytes ~init =
  if size_bytes < 0 then invalid_arg "Grant.create";
  let gid = 1 + Atomic.fetch_and_add next_gid 1 in
  { gid; g_name = name; size = size_bytes; init; key = Univ.new_key () }

let lookup t proc =
  match Hashtbl.find_opt (Process.grant_table proc) t.gid with
  | Some packed -> Univ.project t.key packed
  | None -> None

let enter t proc f =
  let entry =
    match lookup t proc with
    | Some e -> Some e
    | None ->
        if Process.allocate_grant_bytes proc t.size then begin
          let e = { value = t.init (); entered = false } in
          Hashtbl.replace (Process.grant_table proc) t.gid (Univ.inject t.key e);
          Some e
        end
        else None
  in
  match entry with
  | None -> Error Error.NOMEM
  | Some e ->
      if e.entered then begin
        Atomic.incr refused;
        Error Error.ALREADY
      end
      else begin
        e.entered <- true;
        Process.note_grant_enter proc;
        let o = Process.obs proc in
        let tr = o.Tock_obs.Ctx.trace in
        if Tock_obs.Trace.on tr then
          Tock_obs.Trace.emit tr
            ~ts:(Tock_obs.Ctx.now o)
            ~tid:(Process.id proc) Tock_obs.Trace.Grant_enter
            Tock_obs.Trace.Instant ~arg:t.gid ~text:t.g_name;
        let finish () = e.entered <- false in
        let r =
          try f e.value
          with exn ->
            finish ();
            raise exn
        in
        finish ();
        Ok r
      end

let is_allocated t proc = lookup t proc <> None

(* Thaw support: allocate the instance without entering it (no
   note_grant_enter, no trace) — a frozen board's grant-enter counters
   are restored wholesale afterwards, so the allocation must not count
   as activity. Grant region accounting still applies. *)
let preallocate t proc =
  match lookup t proc with
  | Some _ -> true
  | None ->
      if Process.allocate_grant_bytes proc t.size then begin
        Hashtbl.replace (Process.grant_table proc) t.gid
          (Univ.inject t.key { value = t.init (); entered = false });
        true
      end
      else false

(* Freeze support: read the instance without allocating, entering, or
   touching the grant-enter counters/trace — witness saves must not
   perturb the state they are recording. *)
let peek t proc = Option.map (fun e -> e.value) (lookup t proc)

let size_bytes t = t.size

let name t = t.g_name

let reentries_refused () = Atomic.get refused
