(** Fixed-capacity ring buffer (no heap growth — Tock is heapless).

    Backs per-process upcall queues and the console; overflow drops the
    *new* element and counts it, matching Tock's queue behaviour. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [dummy] fills unused slots (never returned). *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** False (and counts a drop) if full. *)

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val drops : 'a t -> int

val set_drops : 'a t -> int -> unit
(** Re-establish the drop counter from a board witness (freeze/thaw
    support; never used on live queues). *)

val clear : 'a t -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest first; does not consume. *)

val find_remove : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first (oldest) matching element, preserving the
    order of the rest. Used by yield-waitfor to pluck a matching upcall
    out of the queue. *)

(** Fixed-capacity byte ring with bulk transfers: the element ring above
    moves one value per call, this one moves whole spans (at most two
    blits each way, for the wrap), so a producer can batch many small
    writes into one hardware operation on drain. *)
module Bytes_ring : sig
  type t

  val create : capacity:int -> t

  val capacity : t -> int

  val length : t -> int
  (** Bytes queued. *)

  val free : t -> int

  val is_empty : t -> bool

  val push_slice : t -> bytes -> pos:int -> len:int -> int
  (** Append up to [len] bytes from [src.(pos ..)]; returns the count
      accepted. Overflow is dropped-new and counted per byte. *)

  val push_string : t -> string -> int

  val pop_into : t -> Subslice.t -> int
  (** Drain up to the window's length into it (from offset 0); returns
      the count drained. *)

  val dropped : t -> int
  (** Bytes lost to overflow. *)

  val clear : t -> unit
end
