(* otock-lint: allow-file crypto-confinement — this module IS the
   sanctioned kernel re-export of the shared checksum; capsules reach it
   as Tock.Crc16 instead of depending on the crypto layer. *)

(** Kernel-side view of the shared CRC-16/CCITT-FALSE checksum
    ({!Tock_crypto.Crc16}), re-exported so capsules can checksum frames
    without reaching into the crypto layer, extended with an
    incremental update over {!Subslice} windows for scatter-gather
    frames: a checksum over an iovec is folded one window at a time
    without materializing the frame. *)

include module type of Tock_crypto.Crc16

val update_sub : int -> Subslice.t -> int
(** Fold the bytes of the window into the CRC state (no copy). *)
