type yield_kind =
  | Yield_no_wait
  | Yield_wait
  | Yield_wait_for of { driver : int; subscribe_num : int }

type call =
  | Yield of yield_kind
  | Subscribe of {
      driver : int;
      subscribe_num : int;
      upcall_fn : int;
      appdata : int;
    }
  | Command of { driver : int; command_num : int; arg1 : int; arg2 : int }
  | Allow_rw of { driver : int; allow_num : int; addr : int; len : int }
  | Allow_ro of { driver : int; allow_num : int; addr : int; len : int }
  | Memop of { op : int; arg : int }
  | Exit of { variant : int; code : int }
  | Command_blocking of {
      driver : int;
      command_num : int;
      arg1 : int;
      arg2 : int;
      subscribe_num : int;
    }

type ret =
  | Failure of Error.t
  | Failure_u32 of Error.t * int
  | Failure_u32_u32 of Error.t * int * int
  | Success
  | Success_u32 of int
  | Success_u32_u32 of int * int
  | Success_u32_u32_u32 of int * int * int

let registers = 5

(* Class numbers per TRD 104; 0x80 is the local blocking-command
   extension. *)
let class_yield = 0
let class_subscribe = 1
let class_command = 2
let class_allow_rw = 3
let class_allow_ro = 4
let class_memop = 5
let class_exit = 6
let class_command_blocking = 0x80

let memop_brk = 0
let memop_sbrk = 1
let memop_flash_start = 2
let memop_flash_end = 3
let memop_ram_start = 4
let memop_ram_end = 5

let encode_call c =
  match c with
  | Yield Yield_no_wait -> [| class_yield; 0; 0; 0; 0 |]
  | Yield Yield_wait -> [| class_yield; 1; 0; 0; 0 |]
  | Yield (Yield_wait_for { driver; subscribe_num }) ->
      [| class_yield; 2; driver; subscribe_num; 0 |]
  | Subscribe { driver; subscribe_num; upcall_fn; appdata } ->
      [| class_subscribe; driver; subscribe_num; upcall_fn; appdata |]
  | Command { driver; command_num; arg1; arg2 } ->
      [| class_command; driver; command_num; arg1; arg2 |]
  | Allow_rw { driver; allow_num; addr; len } ->
      [| class_allow_rw; driver; allow_num; addr; len |]
  | Allow_ro { driver; allow_num; addr; len } ->
      [| class_allow_ro; driver; allow_num; addr; len |]
  | Memop { op; arg } -> [| class_memop; op; arg; 0; 0 |]
  | Exit { variant; code } -> [| class_exit; variant; code; 0; 0 |]
  | Command_blocking { driver; command_num; arg1; arg2; subscribe_num } ->
      [| class_command_blocking; driver; command_num; arg1; arg2 lor (subscribe_num lsl 16) |]

let decode_call regs =
  (* Literal-pattern match (not an if-chain over the named constants) so
     the compiler emits a jump table: decode is on the per-syscall hot
     path. The length guard makes the unsafe reads in range. *)
  if Array.length regs <> registers then Error Error.INVAL
  else
    let c = Array.unsafe_get regs 0
    and r0 = Array.unsafe_get regs 1
    and r1 = Array.unsafe_get regs 2 in
    let r2 = Array.unsafe_get regs 3 and r3 = Array.unsafe_get regs 4 in
    match c with
    | 0 (* class_yield *) -> (
        match r0 with
        | 0 -> Ok (Yield Yield_no_wait)
        | 1 -> Ok (Yield Yield_wait)
        | 2 -> Ok (Yield (Yield_wait_for { driver = r1; subscribe_num = r2 }))
        | _ -> Error Error.INVAL)
    | 1 (* class_subscribe *) ->
        Ok
          (Subscribe
             { driver = r0; subscribe_num = r1; upcall_fn = r2; appdata = r3 })
    | 2 (* class_command *) ->
        Ok (Command { driver = r0; command_num = r1; arg1 = r2; arg2 = r3 })
    | 3 (* class_allow_rw *) ->
        Ok (Allow_rw { driver = r0; allow_num = r1; addr = r2; len = r3 })
    | 4 (* class_allow_ro *) ->
        Ok (Allow_ro { driver = r0; allow_num = r1; addr = r2; len = r3 })
    | 5 (* class_memop *) -> Ok (Memop { op = r0; arg = r1 })
    | 6 (* class_exit *) -> Ok (Exit { variant = r0; code = r1 })
    | 0x80 (* class_command_blocking *) ->
        Ok
          (Command_blocking
             {
               driver = r0;
               command_num = r1;
               arg1 = r2;
               arg2 = r3 land 0xFFFF;
               subscribe_num = (r3 lsr 16) land 0xFFFF;
             })
    | _ -> Error Error.NOSUPPORT

(* Return variant tags, TRD 104. *)
let tag_failure = 0
let tag_failure_u32 = 1
let tag_failure_u32_u32 = 2
let tag_success = 128
let tag_success_u32 = 129
let tag_success_u32_u32 = 130
let tag_success_u32_u32_u32 = 132

let encode_ret_into ret regs =
  (* In-place variant for the kernel's per-syscall return path: one
     4-word array per process is reused instead of allocating per call.
     Safe because return registers are decoded by the process before its
     next syscall can encode over them. *)
  if Array.length regs <> 4 then invalid_arg "Syscall.encode_ret_into";
  let set a b c d =
    Array.unsafe_set regs 0 a;
    Array.unsafe_set regs 1 b;
    Array.unsafe_set regs 2 c;
    Array.unsafe_set regs 3 d
  in
  match ret with
  | Failure e -> set tag_failure (Error.to_int e) 0 0
  | Failure_u32 (e, a) -> set tag_failure_u32 (Error.to_int e) a 0
  | Failure_u32_u32 (e, a, b) -> set tag_failure_u32_u32 (Error.to_int e) a b
  | Success -> set tag_success 0 0 0
  | Success_u32 a -> set tag_success_u32 a 0 0
  | Success_u32_u32 (a, b) -> set tag_success_u32_u32 a b 0
  | Success_u32_u32_u32 (a, b, c) -> set tag_success_u32_u32_u32 a b c

let encode_ret = function
  | Failure e -> [| tag_failure; Error.to_int e; 0; 0 |]
  | Failure_u32 (e, a) -> [| tag_failure_u32; Error.to_int e; a; 0 |]
  | Failure_u32_u32 (e, a, b) -> [| tag_failure_u32_u32; Error.to_int e; a; b |]
  | Success -> [| tag_success; 0; 0; 0 |]
  | Success_u32 a -> [| tag_success_u32; a; 0; 0 |]
  | Success_u32_u32 (a, b) -> [| tag_success_u32_u32; a; b; 0 |]
  | Success_u32_u32_u32 (a, b, c) -> [| tag_success_u32_u32_u32; a; b; c |]

let decode_ret regs =
  if Array.length regs <> 4 then Error "bad register count"
  else
    let err i =
      match Error.of_int i with
      | Some e -> Ok e
      | None -> Error "bad error code"
    in
    let r1 = Array.unsafe_get regs 1
    and r2 = Array.unsafe_get regs 2
    and r3 = Array.unsafe_get regs 3 in
    match Array.unsafe_get regs 0 with
    | 0 (* tag_failure *) -> Result.map (fun e -> Failure e) (err r1)
    | 1 (* tag_failure_u32 *) ->
        Result.map (fun e -> Failure_u32 (e, r2)) (err r1)
    | 2 (* tag_failure_u32_u32 *) ->
        Result.map (fun e -> Failure_u32_u32 (e, r2, r3)) (err r1)
    | 128 (* tag_success *) -> Ok Success
    | 129 (* tag_success_u32 *) -> Ok (Success_u32 r1)
    | 130 (* tag_success_u32_u32 *) -> Ok (Success_u32_u32 (r1, r2))
    | 132 (* tag_success_u32_u32_u32 *) -> Ok (Success_u32_u32_u32 (r1, r2, r3))
    | _ -> Error "unknown return variant"

let pp_call fmt = function
  | Yield Yield_no_wait -> Format.fprintf fmt "yield-no-wait"
  | Yield Yield_wait -> Format.fprintf fmt "yield-wait"
  | Yield (Yield_wait_for { driver; subscribe_num }) ->
      Format.fprintf fmt "yield-wait-for(%#x,%d)" driver subscribe_num
  | Subscribe { driver; subscribe_num; upcall_fn; _ } ->
      Format.fprintf fmt "subscribe(%#x,%d,fn=%d)" driver subscribe_num upcall_fn
  | Command { driver; command_num; arg1; arg2 } ->
      Format.fprintf fmt "command(%#x,%d,%d,%d)" driver command_num arg1 arg2
  | Allow_rw { driver; allow_num; addr; len } ->
      Format.fprintf fmt "allow-rw(%#x,%d,%#x,%d)" driver allow_num addr len
  | Allow_ro { driver; allow_num; addr; len } ->
      Format.fprintf fmt "allow-ro(%#x,%d,%#x,%d)" driver allow_num addr len
  | Memop { op; arg } -> Format.fprintf fmt "memop(%d,%d)" op arg
  | Exit { variant; code } -> Format.fprintf fmt "exit(%d,%d)" variant code
  | Command_blocking { driver; command_num; subscribe_num; _ } ->
      Format.fprintf fmt "command-blocking(%#x,%d,sub=%d)" driver command_num
        subscribe_num

let pp_ret fmt = function
  | Failure e -> Format.fprintf fmt "Failure(%a)" Error.pp e
  | Failure_u32 (e, a) -> Format.fprintf fmt "Failure(%a,%d)" Error.pp e a
  | Failure_u32_u32 (e, a, b) ->
      Format.fprintf fmt "Failure(%a,%d,%d)" Error.pp e a b
  | Success -> Format.fprintf fmt "Success"
  | Success_u32 a -> Format.fprintf fmt "Success(%d)" a
  | Success_u32_u32 (a, b) -> Format.fprintf fmt "Success(%d,%d)" a b
  | Success_u32_u32_u32 (a, b, c) -> Format.fprintf fmt "Success(%d,%d,%d)" a b c

let ret_is_success = function
  | Success | Success_u32 _ | Success_u32_u32 _ | Success_u32_u32_u32 _ -> true
  | Failure _ | Failure_u32 _ | Failure_u32_u32 _ -> false
