(* otock-lint: allow-file crypto-confinement — trusted core re-export of
   the shared CRC-16 kernel so capsules checksum frames without
   referencing tock_crypto directly, plus the window-aware incremental
   update the zero-copy frame path folds scattered Subslice segments
   with (the window arithmetic uses the raw buffer exactly like the DMA
   adaptors do). *)

include Tock_crypto.Crc16

let update_sub crc (s : Subslice.t) =
  let off, len = Subslice.window s in
  update_fast crc (Subslice.underlying s) ~off ~len
