(** Deterministic pseudo-random number generator (SplitMix64).

    Used everywhere the simulation needs randomness (radio loss, TRNG
    peripheral entropy, key generation for the toy signature scheme) so that
    whole-system runs are reproducible from a single seed. Not
    cryptographically secure; the simulated TRNG peripheral models timing,
    not entropy quality. *)

type t

val create : seed:int64 -> t
(** [create ~seed] makes an independent generator. Two generators with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val byte : t -> int
(** Uniform in [0, 255]. *)

val fill_bytes : t -> bytes -> unit
(** Overwrite every byte of the buffer with random data. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]; useful for giving subsystems their own streams. *)

val state : t -> int64
(** The raw generator state; together with {!set_state} this lets a
    board snapshot capture and re-establish the exact stream position. *)

val set_state : t -> int64 -> unit
