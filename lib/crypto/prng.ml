type t = { mutable state : int64 }

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t ~bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let byte t = Int64.to_int (next_int64 t) land 0xff

let fill_bytes t b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (byte t))
  done

let split t = { state = next_int64 t }

let state t = t.state

let set_state t s = t.state <- s
