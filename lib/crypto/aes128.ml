let block_size = 16

(* ---- GF(2^8) arithmetic with the AES modulus x^8+x^4+x^3+x+1 ---- *)

let gf_mul a b =
  let a = ref a and b = ref b and r = ref 0 in
  for _ = 0 to 7 do
    if !b land 1 = 1 then r := !r lxor !a;
    let hi = !a land 0x80 in
    a := (!a lsl 1) land 0xff;
    if hi <> 0 then a := !a lxor 0x1b;
    b := !b lsr 1
  done;
  !r

(* S-box derived from first principles: multiplicative inverse followed by
   the affine transform b ^ rotl1..4(b) ^ 0x63. *)
let sbox, inv_sbox =
  let inverse = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gf_mul a b = 1 then inverse.(a) <- b
    done
  done;
  let rotl8 x n = ((x lsl n) lor (x lsr (8 - n))) land 0xff in
  let s = Array.make 256 0 and si = Array.make 256 0 in
  for x = 0 to 255 do
    let b = inverse.(x) in
    let v =
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63
    in
    s.(x) <- v;
    si.(v) <- x
  done;
  (s, si)

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

(* ---- T-tables ----

   The fast data path works on four 32-bit column words (big-endian byte
   order, matching FIPS 197's state layout) and folds SubBytes +
   ShiftRows + MixColumns into four 256-entry table lookups per word.
   The tables are derived at module init from the same first-principles
   sbox and gf_mul as the byte-wise reference kernel, so there is still
   no hand-typed constant to get wrong; the reference kernel is retained
   below (module {!Reference}) as the oracle the fast path is tested and
   benchmarked against. *)

let mask32 = 0xFFFFFFFF

let ror8 w = ((w lsr 8) lor (w lsl 24)) land mask32

(* otock-lint: allow domain-safety T-tables are filled once inside this binding's own initializer, at module load before any fleet domain spawns, and are read-only thereafter *)
let te0, te1, te2, te3, td0, td1, td2, td3 =
  let te0 = Array.make 256 0 and te1 = Array.make 256 0 in
  let te2 = Array.make 256 0 and te3 = Array.make 256 0 in
  let td0 = Array.make 256 0 and td1 = Array.make 256 0 in
  let td2 = Array.make 256 0 and td3 = Array.make 256 0 in
  for x = 0 to 255 do
    let s = sbox.(x) in
    (* MixColumns contribution of a row-0 byte: column (2s, s, s, 3s). *)
    let w =
      (gf_mul s 2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor gf_mul s 3
    in
    te0.(x) <- w;
    te1.(x) <- ror8 w;
    te2.(x) <- ror8 (ror8 w);
    te3.(x) <- ror8 (ror8 (ror8 w));
    let si = inv_sbox.(x) in
    (* InvMixColumns contribution: column (14s, 9s, 13s, 11s). *)
    let wi =
      (gf_mul si 14 lsl 24) lor (gf_mul si 9 lsl 16) lor (gf_mul si 13 lsl 8)
      lor gf_mul si 11
    in
    td0.(x) <- wi;
    td1.(x) <- ror8 wi;
    td2.(x) <- ror8 (ror8 wi);
    td3.(x) <- ror8 (ror8 (ror8 wi))
  done;
  (te0, te1, te2, te3, td0, td1, td2, td3)

(* InvMixColumns of one column word — used to derive the equivalent
   inverse cipher's round keys (FIPS 197 §5.3.5). *)
let inv_mix_word w =
  let a0 = (w lsr 24) land 0xff
  and a1 = (w lsr 16) land 0xff
  and a2 = (w lsr 8) land 0xff
  and a3 = w land 0xff in
  ((gf_mul a0 14 lxor gf_mul a1 11 lxor gf_mul a2 13 lxor gf_mul a3 9) lsl 24)
  lor ((gf_mul a0 9 lxor gf_mul a1 14 lxor gf_mul a2 11 lxor gf_mul a3 13)
      lsl 16)
  lor ((gf_mul a0 13 lxor gf_mul a1 9 lxor gf_mul a2 14 lxor gf_mul a3 11)
      lsl 8)
  lor (gf_mul a0 11 lxor gf_mul a1 13 lxor gf_mul a2 9 lxor gf_mul a3 14)

type key = {
  rounds : int array array; (* 11 round keys of 16 bytes (reference path) *)
  enc_w : int array; (* the same 44 round-key words, for the T-table path *)
  dec_w : int array; (* equivalent-inverse-cipher round-key words *)
}

let expand_key kb =
  if Bytes.length kb <> 16 then invalid_arg "Aes128.expand_key: need 16 bytes";
  (* Words as 4-byte int arrays; 44 words total. *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code (Bytes.get kb ((i * 4) + j))
    done
  done;
  for i = 4 to 43 do
    let tmp = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord *)
      let t0 = tmp.(0) in
      tmp.(0) <- tmp.(1);
      tmp.(1) <- tmp.(2);
      tmp.(2) <- tmp.(3);
      tmp.(3) <- t0;
      (* SubWord *)
      for j = 0 to 3 do
        tmp.(j) <- sbox.(tmp.(j))
      done;
      tmp.(0) <- tmp.(0) lxor rcon.((i / 4) - 1)
    end;
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor tmp.(j)
    done
  done;
  let rounds =
    Array.init 11 (fun r ->
        Array.init 16 (fun b -> w.((r * 4) + (b / 4)).(b mod 4)))
  in
  let word r c =
    (rounds.(r).(4 * c) lsl 24)
    lor (rounds.(r).((4 * c) + 1) lsl 16)
    lor (rounds.(r).((4 * c) + 2) lsl 8)
    lor rounds.(r).((4 * c) + 3)
  in
  let enc_w = Array.init 44 (fun i -> word (i / 4) (i mod 4)) in
  let dec_w =
    Array.init 44 (fun i ->
        let r = i / 4 and c = i mod 4 in
        let src = word (10 - r) c in
        if r = 0 || r = 10 then src else inv_mix_word src)
  in
  { rounds; enc_w; dec_w }

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state tbl =
  for i = 0 to 15 do
    state.(i) <- tbl.(state.(i))
  done

(* State layout: state.(4*col + row) — i.e. column-major blocks as in
   FIPS 197's byte ordering of the input. *)
let shift_rows state =
  let g c r = state.((c * 4) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((c * 4) + r) <- g ((c + r) mod 4) r
    done
  done;
  Array.blit out 0 state 0 16

let inv_shift_rows state =
  let g c r = state.((c * 4) + r) in
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    for r = 0 to 3 do
      out.((c * 4) + r) <- g ((c - r + 4) mod 4) r
    done
  done;
  Array.blit out 0 state 0 16

let mix_columns state =
  for c = 0 to 3 do
    let b = c * 4 in
    let a0 = state.(b) and a1 = state.(b + 1) in
    let a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <- gf_mul a0 2 lxor gf_mul a1 3 lxor a2 lxor a3;
    state.(b + 1) <- a0 lxor gf_mul a1 2 lxor gf_mul a2 3 lxor a3;
    state.(b + 2) <- a0 lxor a1 lxor gf_mul a2 2 lxor gf_mul a3 3;
    state.(b + 3) <- gf_mul a0 3 lxor a1 lxor a2 lxor gf_mul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b = c * 4 in
    let a0 = state.(b) and a1 = state.(b + 1) in
    let a2 = state.(b + 2) and a3 = state.(b + 3) in
    state.(b) <-
      gf_mul a0 14 lxor gf_mul a1 11 lxor gf_mul a2 13 lxor gf_mul a3 9;
    state.(b + 1) <-
      gf_mul a0 9 lxor gf_mul a1 14 lxor gf_mul a2 11 lxor gf_mul a3 13;
    state.(b + 2) <-
      gf_mul a0 13 lxor gf_mul a1 9 lxor gf_mul a2 14 lxor gf_mul a3 11;
    state.(b + 3) <-
      gf_mul a0 11 lxor gf_mul a1 13 lxor gf_mul a2 9 lxor gf_mul a3 14
  done

let load_state src off =
  Array.init 16 (fun i -> Char.code (Bytes.get src (off + i)))

let store_state state =
  Bytes.init 16 (fun i -> Char.chr state.(i))

(* ---- byte-wise reference kernels (the oracle) ---- *)

let encrypt_block_ref key src ~off =
  if off < 0 || off + 16 > Bytes.length src then
    invalid_arg "Aes128.encrypt_block";
  let state = load_state src off in
  add_round_key state key.rounds.(0);
  for r = 1 to 9 do
    sub_bytes state sbox;
    shift_rows state;
    mix_columns state;
    add_round_key state key.rounds.(r)
  done;
  sub_bytes state sbox;
  shift_rows state;
  add_round_key state key.rounds.(10);
  store_state state

let decrypt_block_ref key src ~off =
  if off < 0 || off + 16 > Bytes.length src then
    invalid_arg "Aes128.decrypt_block";
  let state = load_state src off in
  add_round_key state key.rounds.(10);
  for r = 9 downto 1 do
    inv_shift_rows state;
    sub_bytes state inv_sbox;
    add_round_key state key.rounds.(r);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  sub_bytes state inv_sbox;
  add_round_key state key.rounds.(0);
  store_state state

module Reference = struct
  let encrypt_block = encrypt_block_ref

  let decrypt_block = decrypt_block_ref
end

(* ---- T-table fast path ---- *)

(* Load the column word at [off + 4c] big-endian. Bounds are validated
   once per block by the callers, so the byte reads are unchecked. *)
let ld src off i =
  (Char.code (Bytes.unsafe_get src (off + i)) lsl 24)
  lor (Char.code (Bytes.unsafe_get src (off + i + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get src (off + i + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get src (off + i + 3))

let st out i v =
  Bytes.unsafe_set out i (Char.unsafe_chr (v lsr 24));
  Bytes.unsafe_set out (i + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set out (i + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set out (i + 3) (Char.unsafe_chr (v land 0xff))

let encrypt_block key src ~off =
  if off < 0 || off + 16 > Bytes.length src then
    invalid_arg "Aes128.encrypt_block";
  let w = key.enc_w in
  let s0 = ref (ld src off 0 lxor Array.unsafe_get w 0)
  and s1 = ref (ld src off 4 lxor Array.unsafe_get w 1)
  and s2 = ref (ld src off 8 lxor Array.unsafe_get w 2)
  and s3 = ref (ld src off 12 lxor Array.unsafe_get w 3) in
  for r = 1 to 9 do
    let a0 = !s0 and a1 = !s1 and a2 = !s2 and a3 = !s3 in
    let b = r * 4 in
    s0 :=
      Array.unsafe_get te0 (a0 lsr 24)
      lxor Array.unsafe_get te1 ((a1 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((a2 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (a3 land 0xff)
      lxor Array.unsafe_get w b;
    s1 :=
      Array.unsafe_get te0 (a1 lsr 24)
      lxor Array.unsafe_get te1 ((a2 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((a3 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (a0 land 0xff)
      lxor Array.unsafe_get w (b + 1);
    s2 :=
      Array.unsafe_get te0 (a2 lsr 24)
      lxor Array.unsafe_get te1 ((a3 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((a0 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (a1 land 0xff)
      lxor Array.unsafe_get w (b + 2);
    s3 :=
      Array.unsafe_get te0 (a3 lsr 24)
      lxor Array.unsafe_get te1 ((a0 lsr 16) land 0xff)
      lxor Array.unsafe_get te2 ((a1 lsr 8) land 0xff)
      lxor Array.unsafe_get te3 (a2 land 0xff)
      lxor Array.unsafe_get w (b + 3)
  done;
  let a0 = !s0 and a1 = !s1 and a2 = !s2 and a3 = !s3 in
  let fin x0 x1 x2 x3 rk =
    (Array.unsafe_get sbox (x0 lsr 24) lsl 24)
    lor (Array.unsafe_get sbox ((x1 lsr 16) land 0xff) lsl 16)
    lor (Array.unsafe_get sbox ((x2 lsr 8) land 0xff) lsl 8)
    lor Array.unsafe_get sbox (x3 land 0xff)
    lxor rk
  in
  let out = Bytes.create 16 in
  st out 0 (fin a0 a1 a2 a3 (Array.unsafe_get w 40));
  st out 4 (fin a1 a2 a3 a0 (Array.unsafe_get w 41));
  st out 8 (fin a2 a3 a0 a1 (Array.unsafe_get w 42));
  st out 12 (fin a3 a0 a1 a2 (Array.unsafe_get w 43));
  out

let decrypt_block key src ~off =
  if off < 0 || off + 16 > Bytes.length src then
    invalid_arg "Aes128.decrypt_block";
  let w = key.dec_w in
  let s0 = ref (ld src off 0 lxor Array.unsafe_get w 0)
  and s1 = ref (ld src off 4 lxor Array.unsafe_get w 1)
  and s2 = ref (ld src off 8 lxor Array.unsafe_get w 2)
  and s3 = ref (ld src off 12 lxor Array.unsafe_get w 3) in
  for r = 1 to 9 do
    let a0 = !s0 and a1 = !s1 and a2 = !s2 and a3 = !s3 in
    let b = r * 4 in
    s0 :=
      Array.unsafe_get td0 (a0 lsr 24)
      lxor Array.unsafe_get td1 ((a3 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((a2 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (a1 land 0xff)
      lxor Array.unsafe_get w b;
    s1 :=
      Array.unsafe_get td0 (a1 lsr 24)
      lxor Array.unsafe_get td1 ((a0 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((a3 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (a2 land 0xff)
      lxor Array.unsafe_get w (b + 1);
    s2 :=
      Array.unsafe_get td0 (a2 lsr 24)
      lxor Array.unsafe_get td1 ((a1 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((a0 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (a3 land 0xff)
      lxor Array.unsafe_get w (b + 2);
    s3 :=
      Array.unsafe_get td0 (a3 lsr 24)
      lxor Array.unsafe_get td1 ((a2 lsr 16) land 0xff)
      lxor Array.unsafe_get td2 ((a1 lsr 8) land 0xff)
      lxor Array.unsafe_get td3 (a0 land 0xff)
      lxor Array.unsafe_get w (b + 3)
  done;
  let a0 = !s0 and a1 = !s1 and a2 = !s2 and a3 = !s3 in
  let fin x0 x1 x2 x3 rk =
    (Array.unsafe_get inv_sbox (x0 lsr 24) lsl 24)
    lor (Array.unsafe_get inv_sbox ((x1 lsr 16) land 0xff) lsl 16)
    lor (Array.unsafe_get inv_sbox ((x2 lsr 8) land 0xff) lsl 8)
    lor Array.unsafe_get inv_sbox (x3 land 0xff)
    lxor rk
  in
  let out = Bytes.create 16 in
  st out 0 (fin a0 a3 a2 a1 (Array.unsafe_get w 40));
  st out 4 (fin a1 a0 a3 a2 (Array.unsafe_get w 41));
  st out 8 (fin a2 a1 a0 a3 (Array.unsafe_get w 42));
  st out 12 (fin a3 a2 a1 a0 (Array.unsafe_get w 43));
  out

let ecb_map f key src =
  let len = Bytes.length src in
  if len mod 16 <> 0 then invalid_arg "Aes128: ECB needs multiple of 16";
  let out = Bytes.create len in
  let off = ref 0 in
  while !off < len do
    Bytes.blit (f key src ~off:!off) 0 out !off 16;
    off := !off + 16
  done;
  out

let ecb_encrypt key src = ecb_map encrypt_block key src

let ecb_decrypt key src = ecb_map decrypt_block key src

let ctr_transform key ~nonce src =
  if Bytes.length nonce <> 16 then invalid_arg "Aes128.ctr: 16-byte nonce";
  let len = Bytes.length src in
  let out = Bytes.create len in
  let counter = Bytes.copy nonce in
  let bump () =
    (* Increment the last 4 bytes big-endian. *)
    let rec go i =
      if i >= 12 then begin
        let v = (Char.code (Bytes.get counter i) + 1) land 0xff in
        Bytes.set counter i (Char.chr v);
        if v = 0 then go (i - 1)
      end
    in
    go 15
  in
  let off = ref 0 in
  while !off < len do
    let ks = encrypt_block key counter ~off:0 in
    let n = min 16 (len - !off) in
    for i = 0 to n - 1 do
      Bytes.set out (!off + i)
        (Char.chr
           (Char.code (Bytes.get src (!off + i))
           lxor Char.code (Bytes.get ks i)))
    done;
    bump ();
    off := !off + n
  done;
  out
