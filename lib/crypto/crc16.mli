(** CRC-16/CCITT-FALSE: the link-layer frame checksum.

    Shared by every consumer (net stack, benches, tests) so the
    polynomial lives in exactly one place. Three kernels computing the
    same function: {!Reference} is the bitwise oracle, {!update}/
    {!digest} the 256-entry-table scalar kernel, and {!update_fast}/
    {!digest_fast} a slicing-by-4 kernel for the zero-copy data plane.
    All update functions thread an explicit CRC state so checksums can
    be computed incrementally across scattered buffer windows. *)

val init : int
(** Initial CRC state (0xFFFF). *)

val update : int -> bytes -> off:int -> len:int -> int
(** Fold [len] bytes at [off] into the given state (table-driven). *)

val update_byte : int -> int -> int
(** Fold one byte into the state. *)

val update_fast : int -> bytes -> off:int -> len:int -> int
(** Same function as {!update}, slicing-by-4 (4 bytes per iteration). *)

val digest : bytes -> off:int -> len:int -> int
(** [update init]. *)

val digest_fast : bytes -> off:int -> len:int -> int
(** [update_fast init]. *)

module Reference : sig
  val update : int -> bytes -> off:int -> len:int -> int

  val digest : bytes -> off:int -> len:int -> int
  (** Bit-at-a-time oracle — the definition the tables are derived
      from and property-tested against. *)
end
