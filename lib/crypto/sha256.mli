(** SHA-256 (FIPS 180-4), implemented from scratch.

    Provides both a streaming interface (used by the simulated hardware
    digest engine, which feeds data in DMA-sized chunks) and one-shot
    helpers. The digest is always 32 bytes. *)

val digest_length : int
(** 32. *)

type t
(** A streaming hash context. *)

val init : unit -> t

val feed : t -> bytes -> off:int -> len:int -> unit
(** Absorb [len] bytes of [b] starting at [off]. May be called repeatedly. *)

val feed_string : t -> string -> unit

val finalize : t -> bytes
(** Pad, finish, and return the 32-byte digest. The context must not be
    used afterwards. *)

val digest_bytes : bytes -> bytes
(** One-shot digest of a whole buffer. *)

val digest_string : string -> bytes

val compress : t -> bytes -> off:int -> unit
(** Run the (unrolled) compression function over one 64-byte block at
    [off], updating the chaining state in place. Exposed so the
    [datapath] bench and the equivalence tests can drive the gated
    primitive directly; normal callers use {!feed}/{!finalize}. *)

(** One-shot digests over the byte-wise textbook compression function —
    the oracle the unrolled fast path is property-tested against, and the
    baseline its speedup is measured from. *)
module Reference : sig
  val digest_bytes : bytes -> bytes

  val digest_string : string -> bytes

  val compress : t -> bytes -> off:int -> unit
  (** Per-block textbook compression on the same context type — the
      denominator of the [datapath] speedup gate. *)
end

val hex : bytes -> string
(** Lowercase hexadecimal rendering of a digest (or any byte string). *)
