(** AES-128 (FIPS 197), implemented from scratch.

    The S-box is derived programmatically from the GF(2^8) inverse and the
    affine transform, so there is no hand-typed table to get wrong. The
    block cipher itself runs on T-tables (four 256-entry word tables per
    direction, derived at module init from the same S-box), with the
    byte-wise textbook rounds retained under {!Reference} as the oracle
    the property tests compare against. Provides the raw block cipher plus
    ECB and CTR helpers; the simulated AES hardware engine wraps these with
    DMA timing. *)

val block_size : int
(** 16. *)

type key
(** An expanded 128-bit key schedule. *)

val expand_key : bytes -> key
(** [expand_key k] expects exactly 16 key bytes. *)

val encrypt_block : key -> bytes -> off:int -> bytes
(** Encrypt the 16-byte block at [off]; returns a fresh 16-byte block.
    T-table fast path. *)

val decrypt_block : key -> bytes -> off:int -> bytes

(** Byte-wise textbook rounds (SubBytes/ShiftRows/MixColumns over a
    16-byte state array) — kept as the equivalence oracle for the T-table
    kernels, and for measuring the fast path's speedup. *)
module Reference : sig
  val encrypt_block : key -> bytes -> off:int -> bytes

  val decrypt_block : key -> bytes -> off:int -> bytes
end

val ecb_encrypt : key -> bytes -> bytes
(** Whole-buffer ECB; the input length must be a multiple of 16. *)

val ecb_decrypt : key -> bytes -> bytes

val ctr_transform : key -> nonce:bytes -> bytes -> bytes
(** CTR mode keystream XOR (encryption and decryption are the same
    operation). [nonce] is 16 bytes used as the initial counter block; the
    counter occupies the last 4 bytes, big-endian. Any input length. *)
