(* SHA-256 over OCaml's native ints: all 32-bit words are kept masked to
   [mask32], which is safe because the native int is at least 63 bits. *)

let digest_length = 32

let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type t = {
  h : int array;            (* 8 chaining words *)
  block : bytes;            (* 64-byte partial block *)
  mutable fill : int;       (* bytes currently buffered in [block] *)
  mutable total : int;      (* total message bytes absorbed *)
  w : int array;            (* 64-entry message schedule, reused *)
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* Byte-wise/textbook compression — retained as the oracle for the
   unrolled fast path below (see {!Reference}). *)
let compress_ref t block off =
  let w = t.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    w.(i) <-
      (Char.code (Bytes.get block j) lsl 24)
      lor (Char.code (Bytes.get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.get block (j + 2)) lsl 8)
      lor Char.code (Bytes.get block (j + 3))
  done;
  for i = 16 to 63 do
    let s0 =
      rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3)
    in
    let s1 =
      rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10)
    in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
  done;
  let h = t.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

(* ---- fast compression ----

   Same function, restructured for the data plane into one straight-line
   SSA block: all 64 rounds fully unrolled with the round constants as
   immediates, and the message schedule fused in -- w_i (i >= 16) is
   computed right before the round that consumes it, so the 48-entry
   schedule array and its ~200 memory accesses per block disappear and
   the only loads left are the 64 message bytes and the 8 chaining
   words. The a/e recurrences per FIPS 180-4 §6.2.2:
   a_i = t1_i + S0(a_{i-1}) + maj(a_{i-1},a_{i-2},a_{i-3}),
   e_i = a_{i-4} + t1_i, with
   t1_i = e_{i-4} + S1(e_{i-1}) + ch(e_{i-1},e_{i-2},e_{i-3}) + k_i + w_i,
   rotate the state by renaming instead of shuffling eight variables.
   ch/maj use the xor-chain forms ch(e,f,g) = ((f^g) & e) ^ g and
   maj(a,b,c) = ((a^b) & (b^c)) ^ b, whose (f^g)/(b^c) terms are the
   previous round's (e^f)/(a^b) -- carried along as x_i/y_i so each
   costs one xor. The sigmas are spelled out inline (the classic
   ocamlopt inliner would leave them as calls) and use the
   duplicated-word rotation trick: with d = x lor (x lsl 32) the low 32
   bits of (d lsr n) are rot_n(x) for any n <= 31, because the high
   copy supplies the wrap-around bits -- so each rotation costs one
   shift instead of the two in (x lsr n) lor (x lsl (32-n)). Shift
   µops are the dominant per-round cost, and halving them is worth
   ~25% of the whole block on a 2-shift-port core. t1 and the sigmas
   stay unmasked: they only feed additions and the final per-variable
   masks, the native int has headroom for the sums, and no later
   right-shift sees their high garbage bits (the plain-shift terms
   [w lsr 3]/[w lsr 10] of the schedule sigmas read the clean word, not
   the duplicate). t1's summands are associated as
   S1 + ch + (h + k + w) so the state-independent half of the sum sits
   off the e -> S1 -> t1 -> e critical path. compress_ref is the
   oracle proving all of this equivalent to the textbook form. *)

(* Unsafe 32-bit primitives for the fast path's message-word loads: a
   big-endian word in one load + byte swap instead of four byte reads.
   cmmgen unboxes the whole [Int32] chain, so no boxing either --
   bounds are established once at compress entry. *)
external get32u : bytes -> int -> int32 = "%caml_bytes_get32u"
external swap32 : int32 -> int32 = "%bswap_int32"

let ld32 b i = Int32.to_int (swap32 (get32u b i)) land mask32

let compress_fast t block off =
  if off < 0 || off + 64 > Bytes.length block then
    invalid_arg "Sha256.compress";
  let w0 = ld32 block (off + 0) in
  let w1 = ld32 block (off + 4) in
  let w2 = ld32 block (off + 8) in
  let w3 = ld32 block (off + 12) in
  let w4 = ld32 block (off + 16) in
  let w5 = ld32 block (off + 20) in
  let w6 = ld32 block (off + 24) in
  let w7 = ld32 block (off + 28) in
  let w8 = ld32 block (off + 32) in
  let w9 = ld32 block (off + 36) in
  let w10 = ld32 block (off + 40) in
  let w11 = ld32 block (off + 44) in
  let w12 = ld32 block (off + 48) in
  let w13 = ld32 block (off + 52) in
  let w14 = ld32 block (off + 56) in
  let w15 = ld32 block (off + 60) in
  let h = t.h in
  let a0 = Array.unsafe_get h 0
  and b0 = Array.unsafe_get h 1
  and c0 = Array.unsafe_get h 2
  and d0 = Array.unsafe_get h 3
  and e0 = Array.unsafe_get h 4
  and f0 = Array.unsafe_get h 5
  and g0 = Array.unsafe_get h 6
  and h0 = Array.unsafe_get h 7 in
  let x0 = b0 lxor c0 and y0 = f0 lxor g0 in
  let x1 = a0 lxor b0
  and y1 = e0 lxor f0 in
  let t1 =
    (let de = e0 lor (e0 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y0 land e0) lxor g0)
    + (h0 + 0x428a2f98 + w0)
  in
  let a1 =
    (t1
    + (let da = a0 lor (a0 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x1 land x0) lxor b0))
    land mask32
  and e1 = (d0 + t1) land mask32 in
  let x2 = a1 lxor a0
  and y2 = e1 lxor e0 in
  let t1 =
    (let de = e1 lor (e1 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y1 land e1) lxor f0)
    + (g0 + 0x71374491 + w1)
  in
  let a2 =
    (t1
    + (let da = a1 lor (a1 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x2 land x1) lxor a0))
    land mask32
  and e2 = (c0 + t1) land mask32 in
  let x3 = a2 lxor a1
  and y3 = e2 lxor e1 in
  let t1 =
    (let de = e2 lor (e2 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y2 land e2) lxor e0)
    + (f0 + 0xb5c0fbcf + w2)
  in
  let a3 =
    (t1
    + (let da = a2 lor (a2 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x3 land x2) lxor a1))
    land mask32
  and e3 = (b0 + t1) land mask32 in
  let x4 = a3 lxor a2
  and y4 = e3 lxor e2 in
  let t1 =
    (let de = e3 lor (e3 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y3 land e3) lxor e1)
    + (e0 + 0xe9b5dba5 + w3)
  in
  let a4 =
    (t1
    + (let da = a3 lor (a3 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x4 land x3) lxor a2))
    land mask32
  and e4 = (a0 + t1) land mask32 in
  let x5 = a4 lxor a3
  and y5 = e4 lxor e3 in
  let t1 =
    (let de = e4 lor (e4 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y4 land e4) lxor e2)
    + (e1 + 0x3956c25b + w4)
  in
  let a5 =
    (t1
    + (let da = a4 lor (a4 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x5 land x4) lxor a3))
    land mask32
  and e5 = (a1 + t1) land mask32 in
  let x6 = a5 lxor a4
  and y6 = e5 lxor e4 in
  let t1 =
    (let de = e5 lor (e5 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y5 land e5) lxor e3)
    + (e2 + 0x59f111f1 + w5)
  in
  let a6 =
    (t1
    + (let da = a5 lor (a5 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x6 land x5) lxor a4))
    land mask32
  and e6 = (a2 + t1) land mask32 in
  let x7 = a6 lxor a5
  and y7 = e6 lxor e5 in
  let t1 =
    (let de = e6 lor (e6 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y6 land e6) lxor e4)
    + (e3 + 0x923f82a4 + w6)
  in
  let a7 =
    (t1
    + (let da = a6 lor (a6 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x7 land x6) lxor a5))
    land mask32
  and e7 = (a3 + t1) land mask32 in
  let x8 = a7 lxor a6
  and y8 = e7 lxor e6 in
  let t1 =
    (let de = e7 lor (e7 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y7 land e7) lxor e5)
    + (e4 + 0xab1c5ed5 + w7)
  in
  let a8 =
    (t1
    + (let da = a7 lor (a7 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x8 land x7) lxor a6))
    land mask32
  and e8 = (a4 + t1) land mask32 in
  let x9 = a8 lxor a7
  and y9 = e8 lxor e7 in
  let t1 =
    (let de = e8 lor (e8 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y8 land e8) lxor e6)
    + (e5 + 0xd807aa98 + w8)
  in
  let a9 =
    (t1
    + (let da = a8 lor (a8 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x9 land x8) lxor a7))
    land mask32
  and e9 = (a5 + t1) land mask32 in
  let x10 = a9 lxor a8
  and y10 = e9 lxor e8 in
  let t1 =
    (let de = e9 lor (e9 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y9 land e9) lxor e7)
    + (e6 + 0x12835b01 + w9)
  in
  let a10 =
    (t1
    + (let da = a9 lor (a9 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x10 land x9) lxor a8))
    land mask32
  and e10 = (a6 + t1) land mask32 in
  let x11 = a10 lxor a9
  and y11 = e10 lxor e9 in
  let t1 =
    (let de = e10 lor (e10 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y10 land e10) lxor e8)
    + (e7 + 0x243185be + w10)
  in
  let a11 =
    (t1
    + (let da = a10 lor (a10 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x11 land x10) lxor a9))
    land mask32
  and e11 = (a7 + t1) land mask32 in
  let x12 = a11 lxor a10
  and y12 = e11 lxor e10 in
  let t1 =
    (let de = e11 lor (e11 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y11 land e11) lxor e9)
    + (e8 + 0x550c7dc3 + w11)
  in
  let a12 =
    (t1
    + (let da = a11 lor (a11 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x12 land x11) lxor a10))
    land mask32
  and e12 = (a8 + t1) land mask32 in
  let x13 = a12 lxor a11
  and y13 = e12 lxor e11 in
  let t1 =
    (let de = e12 lor (e12 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y12 land e12) lxor e10)
    + (e9 + 0x72be5d74 + w12)
  in
  let a13 =
    (t1
    + (let da = a12 lor (a12 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x13 land x12) lxor a11))
    land mask32
  and e13 = (a9 + t1) land mask32 in
  let x14 = a13 lxor a12
  and y14 = e13 lxor e12 in
  let t1 =
    (let de = e13 lor (e13 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y13 land e13) lxor e11)
    + (e10 + 0x80deb1fe + w13)
  in
  let a14 =
    (t1
    + (let da = a13 lor (a13 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x14 land x13) lxor a12))
    land mask32
  and e14 = (a10 + t1) land mask32 in
  let x15 = a14 lxor a13
  and y15 = e14 lxor e13 in
  let t1 =
    (let de = e14 lor (e14 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y14 land e14) lxor e12)
    + (e11 + 0x9bdc06a7 + w14)
  in
  let a15 =
    (t1
    + (let da = a14 lor (a14 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x15 land x14) lxor a13))
    land mask32
  and e15 = (a11 + t1) land mask32 in
  let x16 = a15 lxor a14
  and y16 = e15 lxor e14 in
  let t1 =
    (let de = e15 lor (e15 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y15 land e15) lxor e13)
    + (e12 + 0xc19bf174 + w15)
  in
  let a16 =
    (t1
    + (let da = a15 lor (a15 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x16 land x15) lxor a14))
    land mask32
  and e16 = (a12 + t1) land mask32 in
  let w16 =
    (w0 + w9
    + (let dw = w1 lor (w1 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w1 lsr 3))
    + (let dv = w14 lor (w14 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w14 lsr 10)))
    land mask32
  in
  let x17 = a16 lxor a15
  and y17 = e16 lxor e15 in
  let t1 =
    (let de = e16 lor (e16 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y16 land e16) lxor e14)
    + (e13 + 0xe49b69c1 + w16)
  in
  let a17 =
    (t1
    + (let da = a16 lor (a16 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x17 land x16) lxor a15))
    land mask32
  and e17 = (a13 + t1) land mask32 in
  let w17 =
    (w1 + w10
    + (let dw = w2 lor (w2 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w2 lsr 3))
    + (let dv = w15 lor (w15 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w15 lsr 10)))
    land mask32
  in
  let x18 = a17 lxor a16
  and y18 = e17 lxor e16 in
  let t1 =
    (let de = e17 lor (e17 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y17 land e17) lxor e15)
    + (e14 + 0xefbe4786 + w17)
  in
  let a18 =
    (t1
    + (let da = a17 lor (a17 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x18 land x17) lxor a16))
    land mask32
  and e18 = (a14 + t1) land mask32 in
  let w18 =
    (w2 + w11
    + (let dw = w3 lor (w3 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w3 lsr 3))
    + (let dv = w16 lor (w16 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w16 lsr 10)))
    land mask32
  in
  let x19 = a18 lxor a17
  and y19 = e18 lxor e17 in
  let t1 =
    (let de = e18 lor (e18 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y18 land e18) lxor e16)
    + (e15 + 0x0fc19dc6 + w18)
  in
  let a19 =
    (t1
    + (let da = a18 lor (a18 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x19 land x18) lxor a17))
    land mask32
  and e19 = (a15 + t1) land mask32 in
  let w19 =
    (w3 + w12
    + (let dw = w4 lor (w4 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w4 lsr 3))
    + (let dv = w17 lor (w17 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w17 lsr 10)))
    land mask32
  in
  let x20 = a19 lxor a18
  and y20 = e19 lxor e18 in
  let t1 =
    (let de = e19 lor (e19 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y19 land e19) lxor e17)
    + (e16 + 0x240ca1cc + w19)
  in
  let a20 =
    (t1
    + (let da = a19 lor (a19 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x20 land x19) lxor a18))
    land mask32
  and e20 = (a16 + t1) land mask32 in
  let w20 =
    (w4 + w13
    + (let dw = w5 lor (w5 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w5 lsr 3))
    + (let dv = w18 lor (w18 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w18 lsr 10)))
    land mask32
  in
  let x21 = a20 lxor a19
  and y21 = e20 lxor e19 in
  let t1 =
    (let de = e20 lor (e20 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y20 land e20) lxor e18)
    + (e17 + 0x2de92c6f + w20)
  in
  let a21 =
    (t1
    + (let da = a20 lor (a20 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x21 land x20) lxor a19))
    land mask32
  and e21 = (a17 + t1) land mask32 in
  let w21 =
    (w5 + w14
    + (let dw = w6 lor (w6 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w6 lsr 3))
    + (let dv = w19 lor (w19 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w19 lsr 10)))
    land mask32
  in
  let x22 = a21 lxor a20
  and y22 = e21 lxor e20 in
  let t1 =
    (let de = e21 lor (e21 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y21 land e21) lxor e19)
    + (e18 + 0x4a7484aa + w21)
  in
  let a22 =
    (t1
    + (let da = a21 lor (a21 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x22 land x21) lxor a20))
    land mask32
  and e22 = (a18 + t1) land mask32 in
  let w22 =
    (w6 + w15
    + (let dw = w7 lor (w7 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w7 lsr 3))
    + (let dv = w20 lor (w20 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w20 lsr 10)))
    land mask32
  in
  let x23 = a22 lxor a21
  and y23 = e22 lxor e21 in
  let t1 =
    (let de = e22 lor (e22 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y22 land e22) lxor e20)
    + (e19 + 0x5cb0a9dc + w22)
  in
  let a23 =
    (t1
    + (let da = a22 lor (a22 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x23 land x22) lxor a21))
    land mask32
  and e23 = (a19 + t1) land mask32 in
  let w23 =
    (w7 + w16
    + (let dw = w8 lor (w8 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w8 lsr 3))
    + (let dv = w21 lor (w21 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w21 lsr 10)))
    land mask32
  in
  let x24 = a23 lxor a22
  and y24 = e23 lxor e22 in
  let t1 =
    (let de = e23 lor (e23 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y23 land e23) lxor e21)
    + (e20 + 0x76f988da + w23)
  in
  let a24 =
    (t1
    + (let da = a23 lor (a23 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x24 land x23) lxor a22))
    land mask32
  and e24 = (a20 + t1) land mask32 in
  let w24 =
    (w8 + w17
    + (let dw = w9 lor (w9 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w9 lsr 3))
    + (let dv = w22 lor (w22 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w22 lsr 10)))
    land mask32
  in
  let x25 = a24 lxor a23
  and y25 = e24 lxor e23 in
  let t1 =
    (let de = e24 lor (e24 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y24 land e24) lxor e22)
    + (e21 + 0x983e5152 + w24)
  in
  let a25 =
    (t1
    + (let da = a24 lor (a24 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x25 land x24) lxor a23))
    land mask32
  and e25 = (a21 + t1) land mask32 in
  let w25 =
    (w9 + w18
    + (let dw = w10 lor (w10 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w10 lsr 3))
    + (let dv = w23 lor (w23 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w23 lsr 10)))
    land mask32
  in
  let x26 = a25 lxor a24
  and y26 = e25 lxor e24 in
  let t1 =
    (let de = e25 lor (e25 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y25 land e25) lxor e23)
    + (e22 + 0xa831c66d + w25)
  in
  let a26 =
    (t1
    + (let da = a25 lor (a25 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x26 land x25) lxor a24))
    land mask32
  and e26 = (a22 + t1) land mask32 in
  let w26 =
    (w10 + w19
    + (let dw = w11 lor (w11 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w11 lsr 3))
    + (let dv = w24 lor (w24 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w24 lsr 10)))
    land mask32
  in
  let x27 = a26 lxor a25
  and y27 = e26 lxor e25 in
  let t1 =
    (let de = e26 lor (e26 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y26 land e26) lxor e24)
    + (e23 + 0xb00327c8 + w26)
  in
  let a27 =
    (t1
    + (let da = a26 lor (a26 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x27 land x26) lxor a25))
    land mask32
  and e27 = (a23 + t1) land mask32 in
  let w27 =
    (w11 + w20
    + (let dw = w12 lor (w12 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w12 lsr 3))
    + (let dv = w25 lor (w25 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w25 lsr 10)))
    land mask32
  in
  let x28 = a27 lxor a26
  and y28 = e27 lxor e26 in
  let t1 =
    (let de = e27 lor (e27 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y27 land e27) lxor e25)
    + (e24 + 0xbf597fc7 + w27)
  in
  let a28 =
    (t1
    + (let da = a27 lor (a27 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x28 land x27) lxor a26))
    land mask32
  and e28 = (a24 + t1) land mask32 in
  let w28 =
    (w12 + w21
    + (let dw = w13 lor (w13 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w13 lsr 3))
    + (let dv = w26 lor (w26 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w26 lsr 10)))
    land mask32
  in
  let x29 = a28 lxor a27
  and y29 = e28 lxor e27 in
  let t1 =
    (let de = e28 lor (e28 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y28 land e28) lxor e26)
    + (e25 + 0xc6e00bf3 + w28)
  in
  let a29 =
    (t1
    + (let da = a28 lor (a28 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x29 land x28) lxor a27))
    land mask32
  and e29 = (a25 + t1) land mask32 in
  let w29 =
    (w13 + w22
    + (let dw = w14 lor (w14 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w14 lsr 3))
    + (let dv = w27 lor (w27 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w27 lsr 10)))
    land mask32
  in
  let x30 = a29 lxor a28
  and y30 = e29 lxor e28 in
  let t1 =
    (let de = e29 lor (e29 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y29 land e29) lxor e27)
    + (e26 + 0xd5a79147 + w29)
  in
  let a30 =
    (t1
    + (let da = a29 lor (a29 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x30 land x29) lxor a28))
    land mask32
  and e30 = (a26 + t1) land mask32 in
  let w30 =
    (w14 + w23
    + (let dw = w15 lor (w15 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w15 lsr 3))
    + (let dv = w28 lor (w28 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w28 lsr 10)))
    land mask32
  in
  let x31 = a30 lxor a29
  and y31 = e30 lxor e29 in
  let t1 =
    (let de = e30 lor (e30 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y30 land e30) lxor e28)
    + (e27 + 0x06ca6351 + w30)
  in
  let a31 =
    (t1
    + (let da = a30 lor (a30 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x31 land x30) lxor a29))
    land mask32
  and e31 = (a27 + t1) land mask32 in
  let w31 =
    (w15 + w24
    + (let dw = w16 lor (w16 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w16 lsr 3))
    + (let dv = w29 lor (w29 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w29 lsr 10)))
    land mask32
  in
  let x32 = a31 lxor a30
  and y32 = e31 lxor e30 in
  let t1 =
    (let de = e31 lor (e31 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y31 land e31) lxor e29)
    + (e28 + 0x14292967 + w31)
  in
  let a32 =
    (t1
    + (let da = a31 lor (a31 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x32 land x31) lxor a30))
    land mask32
  and e32 = (a28 + t1) land mask32 in
  let w32 =
    (w16 + w25
    + (let dw = w17 lor (w17 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w17 lsr 3))
    + (let dv = w30 lor (w30 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w30 lsr 10)))
    land mask32
  in
  let x33 = a32 lxor a31
  and y33 = e32 lxor e31 in
  let t1 =
    (let de = e32 lor (e32 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y32 land e32) lxor e30)
    + (e29 + 0x27b70a85 + w32)
  in
  let a33 =
    (t1
    + (let da = a32 lor (a32 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x33 land x32) lxor a31))
    land mask32
  and e33 = (a29 + t1) land mask32 in
  let w33 =
    (w17 + w26
    + (let dw = w18 lor (w18 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w18 lsr 3))
    + (let dv = w31 lor (w31 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w31 lsr 10)))
    land mask32
  in
  let x34 = a33 lxor a32
  and y34 = e33 lxor e32 in
  let t1 =
    (let de = e33 lor (e33 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y33 land e33) lxor e31)
    + (e30 + 0x2e1b2138 + w33)
  in
  let a34 =
    (t1
    + (let da = a33 lor (a33 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x34 land x33) lxor a32))
    land mask32
  and e34 = (a30 + t1) land mask32 in
  let w34 =
    (w18 + w27
    + (let dw = w19 lor (w19 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w19 lsr 3))
    + (let dv = w32 lor (w32 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w32 lsr 10)))
    land mask32
  in
  let x35 = a34 lxor a33
  and y35 = e34 lxor e33 in
  let t1 =
    (let de = e34 lor (e34 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y34 land e34) lxor e32)
    + (e31 + 0x4d2c6dfc + w34)
  in
  let a35 =
    (t1
    + (let da = a34 lor (a34 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x35 land x34) lxor a33))
    land mask32
  and e35 = (a31 + t1) land mask32 in
  let w35 =
    (w19 + w28
    + (let dw = w20 lor (w20 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w20 lsr 3))
    + (let dv = w33 lor (w33 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w33 lsr 10)))
    land mask32
  in
  let x36 = a35 lxor a34
  and y36 = e35 lxor e34 in
  let t1 =
    (let de = e35 lor (e35 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y35 land e35) lxor e33)
    + (e32 + 0x53380d13 + w35)
  in
  let a36 =
    (t1
    + (let da = a35 lor (a35 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x36 land x35) lxor a34))
    land mask32
  and e36 = (a32 + t1) land mask32 in
  let w36 =
    (w20 + w29
    + (let dw = w21 lor (w21 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w21 lsr 3))
    + (let dv = w34 lor (w34 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w34 lsr 10)))
    land mask32
  in
  let x37 = a36 lxor a35
  and y37 = e36 lxor e35 in
  let t1 =
    (let de = e36 lor (e36 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y36 land e36) lxor e34)
    + (e33 + 0x650a7354 + w36)
  in
  let a37 =
    (t1
    + (let da = a36 lor (a36 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x37 land x36) lxor a35))
    land mask32
  and e37 = (a33 + t1) land mask32 in
  let w37 =
    (w21 + w30
    + (let dw = w22 lor (w22 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w22 lsr 3))
    + (let dv = w35 lor (w35 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w35 lsr 10)))
    land mask32
  in
  let x38 = a37 lxor a36
  and y38 = e37 lxor e36 in
  let t1 =
    (let de = e37 lor (e37 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y37 land e37) lxor e35)
    + (e34 + 0x766a0abb + w37)
  in
  let a38 =
    (t1
    + (let da = a37 lor (a37 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x38 land x37) lxor a36))
    land mask32
  and e38 = (a34 + t1) land mask32 in
  let w38 =
    (w22 + w31
    + (let dw = w23 lor (w23 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w23 lsr 3))
    + (let dv = w36 lor (w36 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w36 lsr 10)))
    land mask32
  in
  let x39 = a38 lxor a37
  and y39 = e38 lxor e37 in
  let t1 =
    (let de = e38 lor (e38 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y38 land e38) lxor e36)
    + (e35 + 0x81c2c92e + w38)
  in
  let a39 =
    (t1
    + (let da = a38 lor (a38 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x39 land x38) lxor a37))
    land mask32
  and e39 = (a35 + t1) land mask32 in
  let w39 =
    (w23 + w32
    + (let dw = w24 lor (w24 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w24 lsr 3))
    + (let dv = w37 lor (w37 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w37 lsr 10)))
    land mask32
  in
  let x40 = a39 lxor a38
  and y40 = e39 lxor e38 in
  let t1 =
    (let de = e39 lor (e39 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y39 land e39) lxor e37)
    + (e36 + 0x92722c85 + w39)
  in
  let a40 =
    (t1
    + (let da = a39 lor (a39 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x40 land x39) lxor a38))
    land mask32
  and e40 = (a36 + t1) land mask32 in
  let w40 =
    (w24 + w33
    + (let dw = w25 lor (w25 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w25 lsr 3))
    + (let dv = w38 lor (w38 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w38 lsr 10)))
    land mask32
  in
  let x41 = a40 lxor a39
  and y41 = e40 lxor e39 in
  let t1 =
    (let de = e40 lor (e40 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y40 land e40) lxor e38)
    + (e37 + 0xa2bfe8a1 + w40)
  in
  let a41 =
    (t1
    + (let da = a40 lor (a40 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x41 land x40) lxor a39))
    land mask32
  and e41 = (a37 + t1) land mask32 in
  let w41 =
    (w25 + w34
    + (let dw = w26 lor (w26 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w26 lsr 3))
    + (let dv = w39 lor (w39 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w39 lsr 10)))
    land mask32
  in
  let x42 = a41 lxor a40
  and y42 = e41 lxor e40 in
  let t1 =
    (let de = e41 lor (e41 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y41 land e41) lxor e39)
    + (e38 + 0xa81a664b + w41)
  in
  let a42 =
    (t1
    + (let da = a41 lor (a41 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x42 land x41) lxor a40))
    land mask32
  and e42 = (a38 + t1) land mask32 in
  let w42 =
    (w26 + w35
    + (let dw = w27 lor (w27 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w27 lsr 3))
    + (let dv = w40 lor (w40 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w40 lsr 10)))
    land mask32
  in
  let x43 = a42 lxor a41
  and y43 = e42 lxor e41 in
  let t1 =
    (let de = e42 lor (e42 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y42 land e42) lxor e40)
    + (e39 + 0xc24b8b70 + w42)
  in
  let a43 =
    (t1
    + (let da = a42 lor (a42 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x43 land x42) lxor a41))
    land mask32
  and e43 = (a39 + t1) land mask32 in
  let w43 =
    (w27 + w36
    + (let dw = w28 lor (w28 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w28 lsr 3))
    + (let dv = w41 lor (w41 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w41 lsr 10)))
    land mask32
  in
  let x44 = a43 lxor a42
  and y44 = e43 lxor e42 in
  let t1 =
    (let de = e43 lor (e43 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y43 land e43) lxor e41)
    + (e40 + 0xc76c51a3 + w43)
  in
  let a44 =
    (t1
    + (let da = a43 lor (a43 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x44 land x43) lxor a42))
    land mask32
  and e44 = (a40 + t1) land mask32 in
  let w44 =
    (w28 + w37
    + (let dw = w29 lor (w29 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w29 lsr 3))
    + (let dv = w42 lor (w42 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w42 lsr 10)))
    land mask32
  in
  let x45 = a44 lxor a43
  and y45 = e44 lxor e43 in
  let t1 =
    (let de = e44 lor (e44 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y44 land e44) lxor e42)
    + (e41 + 0xd192e819 + w44)
  in
  let a45 =
    (t1
    + (let da = a44 lor (a44 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x45 land x44) lxor a43))
    land mask32
  and e45 = (a41 + t1) land mask32 in
  let w45 =
    (w29 + w38
    + (let dw = w30 lor (w30 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w30 lsr 3))
    + (let dv = w43 lor (w43 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w43 lsr 10)))
    land mask32
  in
  let x46 = a45 lxor a44
  and y46 = e45 lxor e44 in
  let t1 =
    (let de = e45 lor (e45 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y45 land e45) lxor e43)
    + (e42 + 0xd6990624 + w45)
  in
  let a46 =
    (t1
    + (let da = a45 lor (a45 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x46 land x45) lxor a44))
    land mask32
  and e46 = (a42 + t1) land mask32 in
  let w46 =
    (w30 + w39
    + (let dw = w31 lor (w31 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w31 lsr 3))
    + (let dv = w44 lor (w44 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w44 lsr 10)))
    land mask32
  in
  let x47 = a46 lxor a45
  and y47 = e46 lxor e45 in
  let t1 =
    (let de = e46 lor (e46 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y46 land e46) lxor e44)
    + (e43 + 0xf40e3585 + w46)
  in
  let a47 =
    (t1
    + (let da = a46 lor (a46 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x47 land x46) lxor a45))
    land mask32
  and e47 = (a43 + t1) land mask32 in
  let w47 =
    (w31 + w40
    + (let dw = w32 lor (w32 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w32 lsr 3))
    + (let dv = w45 lor (w45 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w45 lsr 10)))
    land mask32
  in
  let x48 = a47 lxor a46
  and y48 = e47 lxor e46 in
  let t1 =
    (let de = e47 lor (e47 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y47 land e47) lxor e45)
    + (e44 + 0x106aa070 + w47)
  in
  let a48 =
    (t1
    + (let da = a47 lor (a47 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x48 land x47) lxor a46))
    land mask32
  and e48 = (a44 + t1) land mask32 in
  let w48 =
    (w32 + w41
    + (let dw = w33 lor (w33 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w33 lsr 3))
    + (let dv = w46 lor (w46 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w46 lsr 10)))
    land mask32
  in
  let x49 = a48 lxor a47
  and y49 = e48 lxor e47 in
  let t1 =
    (let de = e48 lor (e48 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y48 land e48) lxor e46)
    + (e45 + 0x19a4c116 + w48)
  in
  let a49 =
    (t1
    + (let da = a48 lor (a48 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x49 land x48) lxor a47))
    land mask32
  and e49 = (a45 + t1) land mask32 in
  let w49 =
    (w33 + w42
    + (let dw = w34 lor (w34 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w34 lsr 3))
    + (let dv = w47 lor (w47 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w47 lsr 10)))
    land mask32
  in
  let x50 = a49 lxor a48
  and y50 = e49 lxor e48 in
  let t1 =
    (let de = e49 lor (e49 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y49 land e49) lxor e47)
    + (e46 + 0x1e376c08 + w49)
  in
  let a50 =
    (t1
    + (let da = a49 lor (a49 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x50 land x49) lxor a48))
    land mask32
  and e50 = (a46 + t1) land mask32 in
  let w50 =
    (w34 + w43
    + (let dw = w35 lor (w35 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w35 lsr 3))
    + (let dv = w48 lor (w48 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w48 lsr 10)))
    land mask32
  in
  let x51 = a50 lxor a49
  and y51 = e50 lxor e49 in
  let t1 =
    (let de = e50 lor (e50 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y50 land e50) lxor e48)
    + (e47 + 0x2748774c + w50)
  in
  let a51 =
    (t1
    + (let da = a50 lor (a50 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x51 land x50) lxor a49))
    land mask32
  and e51 = (a47 + t1) land mask32 in
  let w51 =
    (w35 + w44
    + (let dw = w36 lor (w36 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w36 lsr 3))
    + (let dv = w49 lor (w49 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w49 lsr 10)))
    land mask32
  in
  let x52 = a51 lxor a50
  and y52 = e51 lxor e50 in
  let t1 =
    (let de = e51 lor (e51 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y51 land e51) lxor e49)
    + (e48 + 0x34b0bcb5 + w51)
  in
  let a52 =
    (t1
    + (let da = a51 lor (a51 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x52 land x51) lxor a50))
    land mask32
  and e52 = (a48 + t1) land mask32 in
  let w52 =
    (w36 + w45
    + (let dw = w37 lor (w37 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w37 lsr 3))
    + (let dv = w50 lor (w50 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w50 lsr 10)))
    land mask32
  in
  let x53 = a52 lxor a51
  and y53 = e52 lxor e51 in
  let t1 =
    (let de = e52 lor (e52 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y52 land e52) lxor e50)
    + (e49 + 0x391c0cb3 + w52)
  in
  let a53 =
    (t1
    + (let da = a52 lor (a52 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x53 land x52) lxor a51))
    land mask32
  and e53 = (a49 + t1) land mask32 in
  let w53 =
    (w37 + w46
    + (let dw = w38 lor (w38 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w38 lsr 3))
    + (let dv = w51 lor (w51 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w51 lsr 10)))
    land mask32
  in
  let x54 = a53 lxor a52
  and y54 = e53 lxor e52 in
  let t1 =
    (let de = e53 lor (e53 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y53 land e53) lxor e51)
    + (e50 + 0x4ed8aa4a + w53)
  in
  let a54 =
    (t1
    + (let da = a53 lor (a53 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x54 land x53) lxor a52))
    land mask32
  and e54 = (a50 + t1) land mask32 in
  let w54 =
    (w38 + w47
    + (let dw = w39 lor (w39 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w39 lsr 3))
    + (let dv = w52 lor (w52 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w52 lsr 10)))
    land mask32
  in
  let x55 = a54 lxor a53
  and y55 = e54 lxor e53 in
  let t1 =
    (let de = e54 lor (e54 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y54 land e54) lxor e52)
    + (e51 + 0x5b9cca4f + w54)
  in
  let a55 =
    (t1
    + (let da = a54 lor (a54 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x55 land x54) lxor a53))
    land mask32
  and e55 = (a51 + t1) land mask32 in
  let w55 =
    (w39 + w48
    + (let dw = w40 lor (w40 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w40 lsr 3))
    + (let dv = w53 lor (w53 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w53 lsr 10)))
    land mask32
  in
  let x56 = a55 lxor a54
  and y56 = e55 lxor e54 in
  let t1 =
    (let de = e55 lor (e55 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y55 land e55) lxor e53)
    + (e52 + 0x682e6ff3 + w55)
  in
  let a56 =
    (t1
    + (let da = a55 lor (a55 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x56 land x55) lxor a54))
    land mask32
  and e56 = (a52 + t1) land mask32 in
  let w56 =
    (w40 + w49
    + (let dw = w41 lor (w41 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w41 lsr 3))
    + (let dv = w54 lor (w54 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w54 lsr 10)))
    land mask32
  in
  let x57 = a56 lxor a55
  and y57 = e56 lxor e55 in
  let t1 =
    (let de = e56 lor (e56 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y56 land e56) lxor e54)
    + (e53 + 0x748f82ee + w56)
  in
  let a57 =
    (t1
    + (let da = a56 lor (a56 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x57 land x56) lxor a55))
    land mask32
  and e57 = (a53 + t1) land mask32 in
  let w57 =
    (w41 + w50
    + (let dw = w42 lor (w42 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w42 lsr 3))
    + (let dv = w55 lor (w55 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w55 lsr 10)))
    land mask32
  in
  let x58 = a57 lxor a56
  and y58 = e57 lxor e56 in
  let t1 =
    (let de = e57 lor (e57 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y57 land e57) lxor e55)
    + (e54 + 0x78a5636f + w57)
  in
  let a58 =
    (t1
    + (let da = a57 lor (a57 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x58 land x57) lxor a56))
    land mask32
  and e58 = (a54 + t1) land mask32 in
  let w58 =
    (w42 + w51
    + (let dw = w43 lor (w43 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w43 lsr 3))
    + (let dv = w56 lor (w56 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w56 lsr 10)))
    land mask32
  in
  let x59 = a58 lxor a57
  and y59 = e58 lxor e57 in
  let t1 =
    (let de = e58 lor (e58 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y58 land e58) lxor e56)
    + (e55 + 0x84c87814 + w58)
  in
  let a59 =
    (t1
    + (let da = a58 lor (a58 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x59 land x58) lxor a57))
    land mask32
  and e59 = (a55 + t1) land mask32 in
  let w59 =
    (w43 + w52
    + (let dw = w44 lor (w44 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w44 lsr 3))
    + (let dv = w57 lor (w57 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w57 lsr 10)))
    land mask32
  in
  let x60 = a59 lxor a58
  and y60 = e59 lxor e58 in
  let t1 =
    (let de = e59 lor (e59 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y59 land e59) lxor e57)
    + (e56 + 0x8cc70208 + w59)
  in
  let a60 =
    (t1
    + (let da = a59 lor (a59 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x60 land x59) lxor a58))
    land mask32
  and e60 = (a56 + t1) land mask32 in
  let w60 =
    (w44 + w53
    + (let dw = w45 lor (w45 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w45 lsr 3))
    + (let dv = w58 lor (w58 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w58 lsr 10)))
    land mask32
  in
  let x61 = a60 lxor a59
  and y61 = e60 lxor e59 in
  let t1 =
    (let de = e60 lor (e60 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y60 land e60) lxor e58)
    + (e57 + 0x90befffa + w60)
  in
  let a61 =
    (t1
    + (let da = a60 lor (a60 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x61 land x60) lxor a59))
    land mask32
  and e61 = (a57 + t1) land mask32 in
  let w61 =
    (w45 + w54
    + (let dw = w46 lor (w46 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w46 lsr 3))
    + (let dv = w59 lor (w59 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w59 lsr 10)))
    land mask32
  in
  let x62 = a61 lxor a60
  and y62 = e61 lxor e60 in
  let t1 =
    (let de = e61 lor (e61 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y61 land e61) lxor e59)
    + (e58 + 0xa4506ceb + w61)
  in
  let a62 =
    (t1
    + (let da = a61 lor (a61 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x62 land x61) lxor a60))
    land mask32
  and e62 = (a58 + t1) land mask32 in
  let w62 =
    (w46 + w55
    + (let dw = w47 lor (w47 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w47 lsr 3))
    + (let dv = w60 lor (w60 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w60 lsr 10)))
    land mask32
  in
  let x63 = a62 lxor a61
  and y63 = e62 lxor e61 in
  let t1 =
    (let de = e62 lor (e62 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y62 land e62) lxor e60)
    + (e59 + 0xbef9a3f7 + w62)
  in
  let a63 =
    (t1
    + (let da = a62 lor (a62 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x63 land x62) lxor a61))
    land mask32
  and e63 = (a59 + t1) land mask32 in
  let w63 =
    (w47 + w56
    + (let dw = w48 lor (w48 lsl 32) in
      (dw lsr 7) lxor (dw lsr 18) lxor (w48 lsr 3))
    + (let dv = w61 lor (w61 lsl 32) in
      (dv lsr 17) lxor (dv lsr 19) lxor (w61 lsr 10)))
    land mask32
  in
  let x64 = a63 lxor a62
  and y64 = e63 lxor e62 in
  let t1 =
    (let de = e63 lor (e63 lsl 32) in
       (de lsr 6) lxor (de lsr 11) lxor (de lsr 25))
    + ((y63 land e63) lxor e61)
    + (e60 + 0xc67178f2 + w63)
  in
  let a64 =
    (t1
    + (let da = a63 lor (a63 lsl 32) in
       (da lsr 2) lxor (da lsr 13) lxor (da lsr 22))
    + ((x64 land x63) lxor a62))
    land mask32
  and e64 = (a60 + t1) land mask32 in
  ignore x64;
  ignore y64;
  Array.unsafe_set h 0 ((a0 + a64) land mask32);
  Array.unsafe_set h 1 ((b0 + a63) land mask32);
  Array.unsafe_set h 2 ((c0 + a62) land mask32);
  Array.unsafe_set h 3 ((d0 + a61) land mask32);
  Array.unsafe_set h 4 ((e0 + e64) land mask32);
  Array.unsafe_set h 5 ((f0 + e63) land mask32);
  Array.unsafe_set h 6 ((g0 + e62) land mask32);
  Array.unsafe_set h 7 ((h0 + e61) land mask32)

let feed_with compress t b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed";
  t.total <- t.total + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partial block first. *)
  if t.fill > 0 then begin
    let take = min (64 - t.fill) !remaining in
    Bytes.blit b !pos t.block t.fill take;
    t.fill <- t.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if t.fill = 64 then begin
      compress t t.block 0;
      t.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress t b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos t.block t.fill !remaining;
    t.fill <- t.fill + !remaining
  end

let feed t b ~off ~len = feed_with compress_fast t b ~off ~len

let feed_string t s =
  feed t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize_with compress t =
  let bitlen = t.total * 8 in
  (* Append 0x80, zero padding, and the 64-bit big-endian length. *)
  Bytes.set t.block t.fill '\x80';
  if t.fill >= 56 then begin
    Bytes.fill t.block (t.fill + 1) (64 - t.fill - 1) '\x00';
    compress t t.block 0;
    Bytes.fill t.block 0 56 '\x00'
  end
  else Bytes.fill t.block (t.fill + 1) (56 - t.fill - 1) '\x00';
  for i = 0 to 7 do
    Bytes.set t.block (56 + i)
      (Char.chr ((bitlen lsr ((7 - i) * 8)) land 0xff))
  done;
  compress t t.block 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = t.h.(i) in
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xff))
  done;
  out

let finalize t = finalize_with compress_fast t

let compress t b ~off = compress_fast t b off

let digest_bytes b =
  let t = init () in
  feed t b ~off:0 ~len:(Bytes.length b);
  finalize t

let digest_string s =
  let t = init () in
  feed_string t s;
  finalize t

module Reference = struct
  let digest_bytes b =
    let t = init () in
    feed_with compress_ref t b ~off:0 ~len:(Bytes.length b);
    finalize_with compress_ref t

  let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

  let compress t b ~off = compress_ref t b off
end

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf
