(* CRC-16/CCITT-FALSE (init 0xFFFF, poly 0x1021, MSB-first, no reflect).

   One checksum kernel for every frame on the wire: the bitwise version
   is the oracle, the 256-entry table derived from it at module init is
   the scalar production kernel, and the slicing-by-4 variant is the
   data-plane kernel used by the zero-copy frame path, where the CRC is
   the only per-byte work left (iopath bench). All three compute the
   same function; the equivalence is property-tested. *)

let init = 0xFFFF

module Reference = struct
  (* Bit-at-a-time over the polynomial — the single source of truth. *)
  let update crc b ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Crc16.Reference.update";
    let crc = ref (crc land 0xFFFF) in
    for i = off to off + len - 1 do
      crc := !crc lxor (Char.code (Bytes.get b i) lsl 8);
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then
          crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done
    done;
    !crc

  let digest b ~off ~len = update init b ~off ~len
end

let table =
  Array.init 256 (fun byte ->
      let crc = ref (byte lsl 8) in
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then
          crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done;
      !crc)

let update_byte crc byte =
  ((crc lsl 8) lxor Array.unsafe_get table ((crc lsr 8) lxor (byte land 0xff)))
  land 0xFFFF

let update crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc16.update";
  let crc = ref (crc land 0xFFFF) in
  for i = off to off + len - 1 do
    let idx = (!crc lsr 8) lxor Char.code (Bytes.unsafe_get b i) in
    crc := ((!crc lsl 8) lxor Array.unsafe_get table idx) land 0xFFFF
  done;
  !crc

let digest b ~off ~len = update init b ~off ~len

(* Slicing-by-4: process 4 input bytes per iteration with one table
   lookup each and no inter-byte carry chain. T_k[b] is the CRC of byte
   [b] followed by [k] zero bytes (from a zero state); by GF(2)
   linearity, advancing state [c] over bytes x0..x3 is
     T3[x0 ^ hi c] ^ T2[x1 ^ lo c] ^ T1[x2] ^ T0[x3]
   since only the two state bytes of a 16-bit CRC mix into the input. *)
let advance c = ((c lsl 8) lxor Array.unsafe_get table (c lsr 8)) land 0xFFFF

let table1 = Array.map advance table

let table2 = Array.map advance table1

let table3 = Array.map advance table2

let update_fast crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc16.update_fast";
  let crc = ref (crc land 0xFFFF) in
  let i = ref off in
  let stop4 = off + (len land lnot 3) in
  while !i < stop4 do
    let x0 = Char.code (Bytes.unsafe_get b !i) lxor (!crc lsr 8) in
    let x1 = Char.code (Bytes.unsafe_get b (!i + 1)) lxor (!crc land 0xff) in
    let x2 = Char.code (Bytes.unsafe_get b (!i + 2)) in
    let x3 = Char.code (Bytes.unsafe_get b (!i + 3)) in
    crc :=
      Array.unsafe_get table3 x0
      lxor Array.unsafe_get table2 x1
      lxor Array.unsafe_get table1 x2
      lxor Array.unsafe_get table x3;
    i := !i + 4
  done;
  while !i < off + len do
    let idx = (!crc lsr 8) lxor Char.code (Bytes.unsafe_get b !i) in
    crc := ((!crc lsl 8) lxor Array.unsafe_get table idx) land 0xFFFF;
    incr i
  done;
  !crc

let digest_fast b ~off ~len = update_fast init b ~off ~len
