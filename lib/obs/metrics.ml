(* The metrics registry: named counters, gauges, and log2-bucketed
   histograms, designed for hot-path recording.

   - Handles are resolved by name once, at registration time; the record
     operations ([incr]/[add]/[set]/[observe]) are plain field updates
     with no hashing, no allocation, and no branching beyond bounds.
   - Registration is idempotent by name, so independent subsystems that
     agree on a name share one series (used deliberately: the two boards
     of a radio group share their sim-level hardware counters).
   - Snapshots are deterministic: entries sorted by name, with values
     copied out, so a fleet of boards renders byte-identical output for
     identical work regardless of registration order or domain placement.

   Histograms bucket by log2: bucket 0 holds values <= 0, bucket b >= 1
   holds [2^(b-1), 2^b). 64 buckets cover the whole int range; cycle
   latencies at any plausible clock rate fit with room to spare. *)

let buckets = 64

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array; (* length [buckets] *)
}

type metric = Mc of counter | Mg of gauge | Mh of histogram

type t = {
  by_name : (string, metric) Hashtbl.t;
  mutable sync_hooks : (unit -> unit) list; (* run (in registration order)
                                               before every snapshot *)
}

let create () = { by_name = Hashtbl.create 64; sync_hooks = [] }

let clash name = invalid_arg ("Metrics: " ^ name ^ " registered with another type")

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mc c) -> c
  | Some _ -> clash name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.by_name name (Mc c);
      c

let gauge t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mg g) -> g
  | Some _ -> clash name
  | None ->
      let g = { g_name = name; g_value = 0 } in
      Hashtbl.replace t.by_name name (Mg g);
      g

let histogram t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mh h) -> h
  | Some _ -> clash name
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0; h_buckets = Array.make buckets 0 }
      in
      Hashtbl.replace t.by_name name (Mh h);
      h

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let counter_name c = c.c_name

let set g v = g.g_value <- v

let set_max g v = if v > g.g_value then g.g_value <- v

let gauge_value g = g.g_value

let gauge_name g = g.g_name

let bucket_index v =
  if v <= 0 then 0
  else begin
    (* floor(log2 v) + 1, clamped: v=1 -> 1, v in [2^(b-1), 2^b) -> b. *)
    let i = ref 0 and v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    if !i > buckets - 1 then buckets - 1 else !i
  end

let bucket_lower_bound b =
  if b <= 0 then min_int else 1 lsl (b - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_index v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

let histogram_name h = h.h_name

let on_snapshot t hook = t.sync_hooks <- t.sync_hooks @ [ hook ]

(* ---- snapshots ---- *)

type hist_snapshot = { hs_count : int; hs_sum : int; hs_buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

type snapshot = (string * value) list

let snapshot t =
  List.iter (fun hook -> hook ()) t.sync_hooks;
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Mc c -> Counter c.c_value
        | Mg g -> Gauge g.g_value
        | Mh h ->
            Histogram
              { hs_count = h.h_count; hs_sum = h.h_sum;
                hs_buckets = Array.copy h.h_buckets }
      in
      (name, v) :: acc)
    t.by_name []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile hs q =
  (* Upper bound of the bucket holding the q-quantile observation: exact
     enough for latency reporting (within 2x), monotone in q. *)
  if hs.hs_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int hs.hs_count)) in
      if r < 1 then 1 else if r > hs.hs_count then hs.hs_count else r
    in
    let b = ref 0 and seen = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + hs.hs_buckets.(i);
         if !seen >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !b = 0 then 0
    else if !b >= buckets - 1 then max_int
    else (1 lsl !b) - 1
  end

let merge_value name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x + y)
  | Histogram x, Histogram y ->
      Histogram
        {
          hs_count = x.hs_count + y.hs_count;
          hs_sum = x.hs_sum + y.hs_sum;
          hs_buckets = Array.init buckets (fun i -> x.hs_buckets.(i) + y.hs_buckets.(i));
        }
  | _ -> invalid_arg ("Metrics.merge: " ^ name ^ " has conflicting types")

let merge snaps =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt tbl name with
         | None -> Hashtbl.replace tbl name v
         | Some prev -> Hashtbl.replace tbl name (merge_value name prev v)))
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- rendering ---- *)

let render_text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%-44s %12d\n" name n)
      | Gauge n ->
          Buffer.add_string buf (Printf.sprintf "%-44s %12d (gauge)\n" name n)
      | Histogram hs ->
          Buffer.add_string buf
            (Printf.sprintf "%-44s count=%d sum=%d p50<=%d p99<=%d\n" name
               hs.hs_count hs.hs_sum (quantile hs 0.5) (quantile hs 0.99)))
    snap;
  Buffer.contents buf

let render_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      (match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "  %S: %d" name n)
      | Gauge n -> Buffer.add_string buf (Printf.sprintf "  %S: %d" name n)
      | Histogram hs ->
          Buffer.add_string buf
            (Printf.sprintf "  %S: {\"count\": %d, \"sum\": %d, \"buckets\": ["
               name hs.hs_count hs.hs_sum);
          let firstb = ref true in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                if not !firstb then Buffer.add_string buf ", ";
                firstb := false;
                Buffer.add_string buf (Printf.sprintf "[%d, %d]" i n)
              end)
            hs.hs_buckets;
          Buffer.add_string buf "]}"))
    snap;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
