(* The metrics registry: named counters, gauges, and log2-bucketed
   histograms, designed for hot-path recording.

   - Handles are resolved by name once, at registration time; the record
     operations ([incr]/[add]/[set]/[observe]) are plain field updates
     with no hashing, no allocation, and no branching beyond bounds.
   - Registration is idempotent by name, so independent subsystems that
     agree on a name share one series (used deliberately: the two boards
     of a radio group share their sim-level hardware counters).
   - Snapshots are deterministic: entries sorted by name, with values
     copied out, so a fleet of boards renders byte-identical output for
     identical work regardless of registration order or domain placement.

   Histograms bucket by log2: bucket 0 holds values <= 0, bucket b >= 1
   holds [2^(b-1), 2^b). 64 buckets cover the whole int range; cycle
   latencies at any plausible clock rate fit with room to spare. *)

let buckets = 64

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : int }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array; (* length [buckets] *)
}

type metric = Mc of counter | Mg of gauge | Mh of histogram

type t = {
  by_name : (string, metric) Hashtbl.t;
  mutable sync_hooks : (unit -> unit) list; (* run (in registration order)
                                               before every snapshot *)
}

let create () = { by_name = Hashtbl.create 64; sync_hooks = [] }

let clash name = invalid_arg ("Metrics: " ^ name ^ " registered with another type")

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mc c) -> c
  | Some _ -> clash name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.by_name name (Mc c);
      c

let gauge t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mg g) -> g
  | Some _ -> clash name
  | None ->
      let g = { g_name = name; g_value = 0 } in
      Hashtbl.replace t.by_name name (Mg g);
      g

let histogram t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Mh h) -> h
  | Some _ -> clash name
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0; h_buckets = Array.make buckets 0 }
      in
      Hashtbl.replace t.by_name name (Mh h);
      h

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let counter_name c = c.c_name

let set g v = g.g_value <- v

let set_max g v = if v > g.g_value then g.g_value <- v

let gauge_value g = g.g_value

let gauge_name g = g.g_name

let bucket_index v =
  if v <= 0 then 0
  else begin
    (* floor(log2 v) + 1, clamped: v=1 -> 1, v in [2^(b-1), 2^b) -> b. *)
    let i = ref 0 and v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    if !i > buckets - 1 then buckets - 1 else !i
  end

let bucket_lower_bound b =
  if b <= 0 then min_int else 1 lsl (b - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_index v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

let histogram_name h = h.h_name

let on_snapshot t hook = t.sync_hooks <- t.sync_hooks @ [ hook ]

(* ---- snapshots ---- *)

type hist_snapshot = { hs_count : int; hs_sum : int; hs_buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

type snapshot = (string * value) list

let snapshot t =
  List.iter (fun hook -> hook ()) t.sync_hooks;
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Mc c -> Counter c.c_value
        | Mg g -> Gauge g.g_value
        | Mh h ->
            Histogram
              { hs_count = h.h_count; hs_sum = h.h_sum;
                hs_buckets = Array.copy h.h_buckets }
      in
      (name, v) :: acc)
    t.by_name []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let quantile hs q =
  (* Upper bound of the bucket holding the q-quantile observation: exact
     enough for latency reporting (within 2x), monotone in q. *)
  if hs.hs_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int hs.hs_count)) in
      if r < 1 then 1 else if r > hs.hs_count then hs.hs_count else r
    in
    let b = ref 0 and seen = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         seen := !seen + hs.hs_buckets.(i);
         if !seen >= rank then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !b = 0 then 0
    else if !b >= buckets - 1 then max_int
    else (1 lsl !b) - 1
  end

(* ---- packed snapshots ----

   A snapshot as an assoc list costs ~10 kB of boxed heap per board —
   prohibitive retained state for 100k-board fleets. The packed form
   splits a snapshot into an immutable *schema* (sorted names + metric
   kinds), shared by every board whose registry registered the same
   series, and one flat byte blob private to the board: scalars
   (counter/gauge values, or word offsets into the histogram area) and
   a sparse histogram area (count, sum, pair count, then non-empty
   (bucket, n) pairs per histogram), all int64-LE words. The blob is a
   string, so the major GC never scans it: a fleet retaining 100k of
   these pays ~a dozen marked words per board, not ~150 — re-marking
   retained stats was the dominant cost of large single-process fleets
   (wall time at 40k boards dropped ~3x when the arrays became
   no-scan).

   Schemas and the iteration-order pack plans are pooled in a global
   mutex-guarded table: a fleet of identical boards shares one schema
   object (the "registry name table", hoisted fleet-level) and pays the
   name sort exactly once. Packing is therefore a cache hit plus two
   array-fill passes per board. Equal registries pack to structurally
   equal values whatever the domain interleaving: the layout is a pure
   function of (sorted names, kinds, values). *)

type schema = {
  sc_names : string array; (* sorted ascending *)
  sc_kinds : string;       (* 'c' | 'g' | 'h' per sorted entry *)
}

type packed = {
  p_schema : schema;
  p_blob : string;
      (* int64-LE words, no-scan. Words [0, n): per sorted entry, the
         counter/gauge value or the absolute word offset of its
         histogram record. Words [n, ...): histogram area — per
         histogram, at its offset: count; sum; npairs; then npairs
         (bucket index, bucket count) pairs in ascending bucket order *)
}

let blob_word p i = Int64.to_int (String.get_int64_le p.p_blob (8 * i))

let kind_char = function Mc _ -> 'c' | Mg _ -> 'g' | Mh _ -> 'h'

(* A pack plan: the schema plus the registry-iteration-order -> sorted
   rank mapping, keyed by the names+kinds in iteration order. Identical
   board recipes register identically, so a whole fleet resolves to a
   handful of plans. The table is cross-domain shared state: guarded. *)
type pack_plan = {
  pl_schema : schema;
  pl_order : int array; (* pl_order.(rank) = index in iteration order *)
}

let plans_mutex = Mutex.create ()

(* otock-lint: allow domain-safety the only access path is [plan_for], whose lookup/insert runs entirely under [Mutex.protect plans_mutex]; stored plans are immutable once built *)
let plans : (string, pack_plan) Hashtbl.t = Hashtbl.create 16

let make_plan names kinds_it =
  let n = Array.length names in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare names.(a) names.(b)) order;
  let sc_names = Array.map (fun i -> names.(i)) order in
  let sc_kinds = String.init n (fun rank -> kinds_it.(order.(rank))) in
  { pl_schema = { sc_names; sc_kinds }; pl_order = order }

let plan_for names kinds_it =
  let key =
    let b = Buffer.create 1024 in
    Array.iteri
      (fun i nm ->
        Buffer.add_string b nm;
        Buffer.add_char b kinds_it.(i);
        Buffer.add_char b '\x00')
      names;
    Buffer.contents b
  in
  Mutex.protect plans_mutex (fun () ->
      match Hashtbl.find_opt plans key with
      | Some p -> p
      | None ->
          let p = make_plan names kinds_it in
          Hashtbl.replace plans key p;
          p)

let hist_pairs h_buckets =
  let nz = ref 0 in
  Array.iter (fun v -> if v <> 0 then Stdlib.incr nz) h_buckets;
  !nz

let packed_of t =
  List.iter (fun hook -> hook ()) t.sync_hooks;
  let n = Hashtbl.length t.by_name in
  let names = Array.make n "" in
  let ms = Array.make n (Mc { c_name = ""; c_value = 0 }) in
  let kinds_it = Array.make n 'c' in
  let i = ref 0 in
  Hashtbl.iter
    (fun name m ->
      names.(!i) <- name;
      ms.(!i) <- m;
      kinds_it.(!i) <- kind_char m;
      Stdlib.incr i)
    t.by_name;
  let plan = plan_for names kinds_it in
  let order = plan.pl_order in
  (* Histogram area size, walking in rank order so offsets are a pure
     function of the sorted layout. *)
  let hist_words = ref 0 in
  Array.iter
    (fun it ->
      match ms.(it) with
      | Mh h -> hist_words := !hist_words + 3 + (2 * hist_pairs h.h_buckets)
      | _ -> ())
    order;
  let blob = Bytes.create (8 * (n + !hist_words)) in
  let set i v = Bytes.set_int64_le blob (8 * i) (Int64.of_int v) in
  let cursor = ref n in
  Array.iteri
    (fun rank it ->
      match ms.(it) with
      | Mc c -> set rank c.c_value
      | Mg g -> set rank g.g_value
      | Mh h ->
          let off = !cursor in
          set rank off;
          set off h.h_count;
          set (off + 1) h.h_sum;
          let np = ref 0 in
          let j = ref (off + 3) in
          Array.iteri
            (fun b v ->
              if v <> 0 then begin
                set !j b;
                set (!j + 1) v;
                j := !j + 2;
                Stdlib.incr np
              end)
            h.h_buckets;
          set (off + 2) !np;
          cursor := !j)
    order;
  { p_schema = plan.pl_schema; p_blob = Bytes.unsafe_to_string blob }

let pack snap =
  let n = List.length snap in
  let sc_names = Array.make n "" in
  let kinds = Bytes.make n 'c' in
  let hist_words =
    List.fold_left
      (fun acc (_, v) ->
        match v with
        | Histogram hs -> acc + 3 + (2 * hist_pairs hs.hs_buckets)
        | _ -> acc)
      0 snap
  in
  let blob = Bytes.create (8 * (n + hist_words)) in
  let set i v = Bytes.set_int64_le blob (8 * i) (Int64.of_int v) in
  let cursor = ref n in
  List.iteri
    (fun rank (name, v) ->
      sc_names.(rank) <- name;
      match v with
      | Counter c -> set rank c
      | Gauge g ->
          Bytes.set kinds rank 'g';
          set rank g
      | Histogram hs ->
          Bytes.set kinds rank 'h';
          let off = !cursor in
          set rank off;
          set off hs.hs_count;
          set (off + 1) hs.hs_sum;
          let np = ref 0 in
          let j = ref (off + 3) in
          Array.iteri
            (fun b n ->
              if n <> 0 then begin
                set !j b;
                set (!j + 1) n;
                j := !j + 2;
                Stdlib.incr np
              end)
            hs.hs_buckets;
          set (off + 2) !np;
          cursor := !j)
    snap;
  {
    p_schema = { sc_names; sc_kinds = Bytes.to_string kinds };
    p_blob = Bytes.unsafe_to_string blob;
  }

(* Structural validation of a packed image against its own schema:
   every word [unpack], [merge_packed] and [Accum.add_packed] will read
   must exist, every histogram record must lie inside the blob with
   in-range bucket indices. [packed_of]/[pack] construct images that
   pass by construction; images rebuilt from bytes (board witnesses,
   flight-recorder artifacts) may be truncated or bit-flipped, and the
   contract mirrors the TCKSNP02 witness hardening: [Error] with a
   diagnostic, never an exception. *)
let validate_packed p =
  let err fmt = Printf.ksprintf (fun m -> Error ("packed: " ^ m)) fmt in
  let sc = p.p_schema in
  let n = Array.length sc.sc_names in
  let words = String.length p.p_blob / 8 in
  if String.length sc.sc_kinds <> n then
    err "schema has %d names but %d kinds" n (String.length sc.sc_kinds)
  else if String.length p.p_blob mod 8 <> 0 || words < n then
    err "blob is %d bytes for %d series" (String.length p.p_blob) n
  else begin
    let bad = ref None in
    for rank = 0 to n - 1 do
      if !bad = None then
        match sc.sc_kinds.[rank] with
        | 'c' | 'g' -> ()
        | 'h' ->
            let off = blob_word p rank in
            if off < n || off + 3 > words then
              bad :=
                Some
                  (err "series %s: histogram offset %d out of range"
                     sc.sc_names.(rank) off)
            else
              let np = blob_word p (off + 2) in
              if np < 0 || np > buckets || off + 3 + (2 * np) > words then
                bad :=
                  Some
                    (err "series %s: %d histogram pairs out of range"
                       sc.sc_names.(rank) np)
              else
                for k = 0 to np - 1 do
                  let b = blob_word p (off + 3 + (2 * k)) in
                  if (b < 0 || b >= buckets) && !bad = None then
                    bad :=
                      Some
                        (err "series %s: bucket %d out of range"
                           sc.sc_names.(rank) b)
                done
        | k -> bad := Some (err "series %s: unknown kind %C" sc.sc_names.(rank) k)
    done;
    match !bad with Some e -> e | None -> Ok ()
  end

(* Unchecked per-series fold over a validated image: the allocation-free
   read path shared by the health-rollup engine. Histograms surface as
   their (count, sum) pair — the per-board scalar shape the cross-board
   distributions fold. *)
let iter_packed p ~counter ~gauge ~hist =
  let sc = p.p_schema in
  for rank = 0 to Array.length sc.sc_names - 1 do
    let name = sc.sc_names.(rank) in
    match sc.sc_kinds.[rank] with
    | 'c' -> counter name (blob_word p rank)
    | 'g' -> gauge name (blob_word p rank)
    | _ ->
        let off = blob_word p rank in
        hist name ~count:(blob_word p off) ~sum:(blob_word p (off + 1))
  done

let unpack p =
  match validate_packed p with
  | Error _ as e -> e
  | Ok () ->
      let sc = p.p_schema in
      let n = Array.length sc.sc_names in
      let rec go rank acc =
        if rank < 0 then acc
        else
          let v =
            match sc.sc_kinds.[rank] with
            | 'c' -> Counter (blob_word p rank)
            | 'g' -> Gauge (blob_word p rank)
            | _ ->
                let off = blob_word p rank in
                let hs_buckets = Array.make buckets 0 in
                let np = blob_word p (off + 2) in
                for k = 0 to np - 1 do
                  hs_buckets.(blob_word p (off + 3 + (2 * k))) <-
                    blob_word p (off + 3 + (2 * k) + 1)
                done;
                Histogram
                  {
                    hs_count = blob_word p off;
                    hs_sum = blob_word p (off + 1);
                    hs_buckets;
                  }
          in
          go (rank - 1) ((sc.sc_names.(rank), v) :: acc)
      in
      Ok (go (n - 1) [])

let packed_to_string p =
  let b = Buffer.create 1024 in
  let int63 v = Buffer.add_int64_le b (Int64.of_int v) in
  let sc = p.p_schema in
  let n = Array.length sc.sc_names in
  int63 n;
  for rank = 0 to n - 1 do
    int63 (String.length sc.sc_names.(rank));
    Buffer.add_string b sc.sc_names.(rank);
    Buffer.add_char b sc.sc_kinds.[rank]
  done;
  (* The blob already is the canonical int64-LE value image. *)
  Buffer.add_string b p.p_blob;
  Buffer.contents b

(* Decode a [packed_to_string] image. Every read is bounds-checked: the
   input may come from a truncated or corrupted board witness, and the
   contract there is [Error], never an exception. *)
let packed_of_string s =
  let len = String.length s in
  let err fmt = Printf.ksprintf (fun m -> Error ("packed: " ^ m)) fmt in
  let word pos =
    if pos < 0 || pos + 8 > len then None
    else Some (Int64.to_int (String.get_int64_le s pos))
  in
  match word 0 with
  | None -> err "truncated header (%d bytes)" len
  | Some n when n < 0 || n > len -> err "absurd series count %d" n
  | Some n -> (
      let sc_names = Array.make (max n 1) "" in
      let kinds = Bytes.make (max n 1) 'c' in
      let pos = ref 8 in
      let bad = ref None in
      (try
         for rank = 0 to n - 1 do
           match word !pos with
           | None -> raise Exit
           | Some nl ->
               if nl < 0 || !pos + 8 + nl + 1 > len then raise Exit;
               sc_names.(rank) <- String.sub s (!pos + 8) nl;
               let k = s.[!pos + 8 + nl] in
               if k <> 'c' && k <> 'g' && k <> 'h' then begin
                 bad := Some (err "series %s: unknown kind %C" sc_names.(rank) k);
                 raise Exit
               end;
               Bytes.set kinds rank k;
               pos := !pos + 8 + nl + 1
         done
       with Exit -> if !bad = None then bad := Some (err "truncated schema"));
      match !bad with
      | Some e -> e
      | None ->
          let blob = String.sub s !pos (len - !pos) in
          let words = String.length blob / 8 in
          if String.length blob mod 8 <> 0 || words < n then
            err "blob is %d bytes for %d series" (String.length blob) n
          else begin
            (* Validate histogram records before accepting the image. *)
            let bw i = Int64.to_int (String.get_int64_le blob (8 * i)) in
            let hist_ok = ref (Ok ()) in
            for rank = 0 to n - 1 do
              if Bytes.get kinds rank = 'h' && !hist_ok = Ok () then begin
                let off = bw rank in
                if off < n || off + 3 > words then
                  hist_ok := err "series %s: histogram offset %d out of range"
                      sc_names.(rank) off
                else
                  let np = bw (off + 2) in
                  if np < 0 || np > buckets || off + 3 + (2 * np) > words then
                    hist_ok := err "series %s: %d histogram pairs out of range"
                        sc_names.(rank) np
                  else
                    for k = 0 to np - 1 do
                      let b = bw (off + 3 + (2 * k)) in
                      if (b < 0 || b >= buckets) && !hist_ok = Ok () then
                        hist_ok := err "series %s: bucket %d out of range"
                            sc_names.(rank) b
                    done
              end
            done;
            match !hist_ok with
            | Error _ as e -> e
            | Ok () ->
                Ok
                  {
                    p_schema =
                      {
                        sc_names = Array.sub sc_names 0 n;
                        sc_kinds = Bytes.sub_string kinds 0 n;
                      };
                    p_blob = blob;
                  }
          end)

(* Overwrite a registry's values from a packed image: the thaw path of
   board freeze/thaw. Series missing from the registry are created
   (snapshot hooks mint gauges lazily, so a freshly-built board has
   fewer series than its frozen image); a registry series absent from
   the image would keep a stale value, so that is an error. *)
let restore_packed t p =
  match validate_packed p with
  | Error e -> Error e
  | Ok () ->
  let sc = p.p_schema in
  let n = Array.length sc.sc_names in
  let bad = ref None in
  for rank = 0 to n - 1 do
    if !bad = None then begin
      let name = sc.sc_names.(rank) in
      match (sc.sc_kinds.[rank], Hashtbl.find_opt t.by_name name) with
      | 'c', Some (Mc c) -> c.c_value <- blob_word p rank
      | 'c', None ->
          let c = counter t name in
          c.c_value <- blob_word p rank
      | 'g', Some (Mg g) -> g.g_value <- blob_word p rank
      | 'g', None ->
          let g = gauge t name in
          g.g_value <- blob_word p rank
      | 'h', (Some (Mh _) | None) ->
          let h =
            match Hashtbl.find_opt t.by_name name with
            | Some (Mh h) -> h
            | _ -> histogram t name
          in
          let off = blob_word p rank in
          h.h_count <- blob_word p off;
          h.h_sum <- blob_word p (off + 1);
          Array.fill h.h_buckets 0 buckets 0;
          let np = blob_word p (off + 2) in
          for k = 0 to np - 1 do
            h.h_buckets.(blob_word p (off + 3 + (2 * k))) <-
              blob_word p (off + 3 + (2 * k) + 1)
          done
      | _, Some _ ->
          bad :=
            Some
              (Printf.sprintf "restore_packed: %s exists with another type" name)
      | _ -> assert false
    end
  done;
  match !bad with
  | Some m -> Error m
  | None ->
      if Hashtbl.length t.by_name <> n then
        Error
          (Printf.sprintf
             "restore_packed: registry has %d series, image has %d — stale \
              series would survive"
             (Hashtbl.length t.by_name) n)
      else Ok ()

(* ---- incremental merge ----

   One merge kernel for everything: the pairwise [merge] below, the
   fleet's streaming per-domain accumulators, and cross-domain tree
   merges all feed an [Accum.t]. Merging is a per-name integer sum
   (counters and gauges add; histograms add count, sum and each bucket),
   so it is associative and commutative: any grouping or ordering of
   the same multiset of snapshots accumulates to the same totals, and
   [to_snapshot] renders them sorted by name — byte-identical output
   however the merge tree was shaped. *)

module Accum = struct
  type acc =
    | Ac of { mutable av : int }
    | Ag of { mutable av : int }
    | Ah of { mutable ah_count : int; mutable ah_sum : int; ah_buckets : int array }

  type t = (string, acc) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let conflict name = invalid_arg ("Metrics.merge: " ^ name ^ " has conflicting types")

  let add_value t name v =
    match (Hashtbl.find_opt t name, v) with
    | None, Counter n -> Hashtbl.replace t name (Ac { av = n })
    | None, Gauge n -> Hashtbl.replace t name (Ag { av = n })
    | None, Histogram hs ->
        Hashtbl.replace t name
          (Ah
             {
               ah_count = hs.hs_count;
               ah_sum = hs.hs_sum;
               ah_buckets = Array.copy hs.hs_buckets;
             })
    | Some (Ac a), Counter n -> a.av <- a.av + n
    | Some (Ag a), Gauge n -> a.av <- a.av + n
    | Some (Ah a), Histogram hs ->
        a.ah_count <- a.ah_count + hs.hs_count;
        a.ah_sum <- a.ah_sum + hs.hs_sum;
        for i = 0 to buckets - 1 do
          a.ah_buckets.(i) <- a.ah_buckets.(i) + hs.hs_buckets.(i)
        done
    | Some _, _ -> conflict name

  let add t snap = List.iter (fun (name, v) -> add_value t name v) snap

  (* The packed fast path: no unpacking allocation on the hit path —
     scalars add in place, histogram pairs add into the accumulated
     bucket array. *)
  let add_packed t p =
    let sc = p.p_schema in
    for rank = 0 to Array.length sc.sc_names - 1 do
      let name = sc.sc_names.(rank) in
      match (Hashtbl.find_opt t name, sc.sc_kinds.[rank]) with
      | None, 'c' -> Hashtbl.replace t name (Ac { av = blob_word p rank })
      | None, 'g' -> Hashtbl.replace t name (Ag { av = blob_word p rank })
      | None, _ ->
          let off = blob_word p rank in
          let ah_buckets = Array.make buckets 0 in
          let np = blob_word p (off + 2) in
          for k = 0 to np - 1 do
            ah_buckets.(blob_word p (off + 3 + (2 * k))) <-
              blob_word p (off + 3 + (2 * k) + 1)
          done;
          Hashtbl.replace t name
            (Ah
               {
                 ah_count = blob_word p off;
                 ah_sum = blob_word p (off + 1);
                 ah_buckets;
               })
      | Some (Ac a), 'c' -> a.av <- a.av + blob_word p rank
      | Some (Ag a), 'g' -> a.av <- a.av + blob_word p rank
      | Some (Ah a), 'h' ->
          let off = blob_word p rank in
          a.ah_count <- a.ah_count + blob_word p off;
          a.ah_sum <- a.ah_sum + blob_word p (off + 1);
          let np = blob_word p (off + 2) in
          for k = 0 to np - 1 do
            let b = blob_word p (off + 3 + (2 * k)) in
            a.ah_buckets.(b) <- a.ah_buckets.(b) + blob_word p (off + 3 + (2 * k) + 1)
          done
      | Some _, _ -> conflict name
    done

  let absorb ~into src =
    Hashtbl.iter
      (fun name acc ->
        match (Hashtbl.find_opt into name, acc) with
        | None, Ac a -> Hashtbl.replace into name (Ac { av = a.av })
        | None, Ag a -> Hashtbl.replace into name (Ag { av = a.av })
        | None, Ah a ->
            Hashtbl.replace into name
              (Ah
                 {
                   ah_count = a.ah_count;
                   ah_sum = a.ah_sum;
                   ah_buckets = Array.copy a.ah_buckets;
                 })
        | Some (Ac d), Ac a -> d.av <- d.av + a.av
        | Some (Ag d), Ag a -> d.av <- d.av + a.av
        | Some (Ah d), Ah a ->
            d.ah_count <- d.ah_count + a.ah_count;
            d.ah_sum <- d.ah_sum + a.ah_sum;
            for i = 0 to buckets - 1 do
              d.ah_buckets.(i) <- d.ah_buckets.(i) + a.ah_buckets.(i)
            done
        | Some _, _ -> conflict name)
      src

  let to_snapshot t =
    Hashtbl.fold
      (fun name acc l ->
        let v =
          match acc with
          | Ac a -> Counter a.av
          | Ag a -> Gauge a.av
          | Ah a ->
              Histogram
                {
                  hs_count = a.ah_count;
                  hs_sum = a.ah_sum;
                  hs_buckets = Array.copy a.ah_buckets;
                }
        in
        (name, v) :: l)
      t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

let merge snaps =
  let a = Accum.create () in
  List.iter (Accum.add a) snaps;
  Accum.to_snapshot a

let merge_packed ps =
  (* Validate every image before folding any: [Accum.add_packed] reads
     the blob unchecked, so a truncated image must be refused up front
     rather than half-merged. *)
  let rec check = function
    | [] -> Ok ()
    | p :: rest -> (
        match validate_packed p with Error _ as e -> e | Ok () -> check rest)
  in
  match check ps with
  | Error e -> Error e
  | Ok () ->
      let a = Accum.create () in
      List.iter (Accum.add_packed a) ps;
      Ok (Accum.to_snapshot a)

(* ---- rendering ---- *)

let render_text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "%-44s %12d\n" name n)
      | Gauge n ->
          Buffer.add_string buf (Printf.sprintf "%-44s %12d (gauge)\n" name n)
      | Histogram hs ->
          Buffer.add_string buf
            (Printf.sprintf "%-44s count=%d sum=%d p50<=%d p99<=%d\n" name
               hs.hs_count hs.hs_sum (quantile hs 0.5) (quantile hs 0.99)))
    snap;
  Buffer.contents buf

let render_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      (match v with
      | Counter n -> Buffer.add_string buf (Printf.sprintf "  %S: %d" name n)
      | Gauge n -> Buffer.add_string buf (Printf.sprintf "  %S: %d" name n)
      | Histogram hs ->
          Buffer.add_string buf
            (Printf.sprintf "  %S: {\"count\": %d, \"sum\": %d, \"buckets\": ["
               name hs.hs_count hs.hs_sum);
          let firstb = ref true in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                if not !firstb then Buffer.add_string buf ", ";
                firstb := false;
                Buffer.add_string buf (Printf.sprintf "[%d, %d]" i n)
              end)
            hs.hs_buckets;
          Buffer.add_string buf "]}"))
    snap;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
