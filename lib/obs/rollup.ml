(* Cross-board health rollups: fold each board's packed metrics into
   per-metric distributions *across boards*, per cohort.

   The fleet runner retires boards in whatever order domains finish, so
   everything here is commutative: each metric's cross-board
   distribution is a log2 histogram (reusing Metrics' bucket machinery)
   plus exact min/max/sum/count — all of which add element-wise, so
   per-domain partial rollups tree-merged with [absorb] render the same
   report as one sequential pass. Memory is O(metrics x cohorts),
   independent of board count: a 100k-board fleet costs the same few
   kilobytes as a 16-board one.

   Outlier detection needs the *final* per-cohort medians, so it runs as
   a deterministic second pass ([evaluate]'s [iter_boards]) over the
   retained per-board packed stats, in board order. *)

type dist = {
  mutable d_n : int;
  mutable d_sum : int;
  mutable d_min : int;
  mutable d_max : int;
  d_buckets : int array; (* length Metrics.buckets; log2 of per-board values *)
}

type cohort = {
  mutable co_boards : int;
  co_dists : (string, dist) Hashtbl.t;
  (* Fast path: the fleet pools packed schemas, so consecutive boards
     nearly always share one physical schema — cache the resolved dist
     plan (schema entry order) and skip the per-name hash lookups. *)
  mutable co_plan_schema : Metrics.schema option;
  mutable co_plan : dist array;
}

type t = { r_cohorts : cohort array }

let create ~cohorts =
  if cohorts <= 0 then invalid_arg "Rollup.create: cohorts <= 0";
  {
    r_cohorts =
      Array.init cohorts (fun _ ->
          { co_boards = 0; co_dists = Hashtbl.create 64;
            co_plan_schema = None; co_plan = [||] });
  }

let cohorts t = Array.length t.r_cohorts

let boards t = Array.fold_left (fun a c -> a + c.co_boards) 0 t.r_cohorts

let dist_for co name =
  match Hashtbl.find_opt co.co_dists name with
  | Some d -> d
  | None ->
      let d =
        { d_n = 0; d_sum = 0; d_min = max_int; d_max = min_int;
          d_buckets = Array.make Metrics.buckets 0 }
      in
      Hashtbl.add co.co_dists name d;
      d

let observe_dist d v =
  d.d_n <- d.d_n + 1;
  d.d_sum <- d.d_sum + v;
  if v < d.d_min then d.d_min <- v;
  if v > d.d_max then d.d_max <- v;
  let b = Metrics.bucket_index v in
  d.d_buckets.(b) <- d.d_buckets.(b) + 1

(* The cohort's dist plan for a packed schema, entry for entry. Cache
   keyed by physical schema equality: rebuilding is rare (a fleet pools
   one schema per workload recipe), hitting is an array read. *)
let plan_for co (s : Metrics.schema) =
  match co.co_plan_schema with
  | Some cached when cached == s -> co.co_plan
  | _ ->
      let plan = Array.map (dist_for co) s.Metrics.sc_names in
      co.co_plan_schema <- Some s;
      co.co_plan <- plan;
      plan

(* One board retires: every counter and gauge contributes its value,
   every histogram contributes its observation count (the rollup asks
   "how many syscalls did each board make", not "how long was each").
   [iter_packed] visits entries in schema order, so a running index
   into the plan replaces a hash lookup per series. *)
let add_packed t ~cohort p =
  let co = t.r_cohorts.(cohort) in
  co.co_boards <- co.co_boards + 1;
  let plan = plan_for co p.Metrics.p_schema in
  let i = ref (-1) in
  let obs v =
    incr i;
    observe_dist plan.(!i) v
  in
  Metrics.iter_packed p
    ~counter:(fun _ v -> obs v)
    ~gauge:(fun _ v -> obs v)
    ~hist:(fun _ ~count ~sum:_ -> obs count)

let absorb ~into src =
  if Array.length into.r_cohorts <> Array.length src.r_cohorts then
    invalid_arg "Rollup.absorb: cohort counts differ";
  Array.iteri
    (fun i sco ->
      let dco = into.r_cohorts.(i) in
      dco.co_boards <- dco.co_boards + sco.co_boards;
      Hashtbl.iter
        (fun name sd ->
          let dd = dist_for dco name in
          dd.d_n <- dd.d_n + sd.d_n;
          dd.d_sum <- dd.d_sum + sd.d_sum;
          if sd.d_min < dd.d_min then dd.d_min <- sd.d_min;
          if sd.d_max > dd.d_max then dd.d_max <- sd.d_max;
          Array.iteri
            (fun b n -> dd.d_buckets.(b) <- dd.d_buckets.(b) + n)
            sd.d_buckets)
        sco.co_dists)
    src.r_cohorts

(* ---- statistics ---- *)

type stat = P50 | P99 | Max | Mean | Total

let stat_name = function
  | P50 -> "p50"
  | P99 -> "p99"
  | Max -> "max"
  | Mean -> "mean"
  | Total -> "total"

let dist_stat d stat =
  if d.d_n = 0 then 0
  else
    match stat with
    | Max -> d.d_max
    | Total -> d.d_sum
    | Mean -> d.d_sum / d.d_n
    | P50 | P99 ->
        let q = if stat = P50 then 0.5 else 0.99 in
        let v =
          Metrics.quantile
            { Metrics.hs_count = d.d_n; hs_sum = d.d_sum;
              hs_buckets = d.d_buckets }
            q
        in
        (* quantile reports the bucket's upper bound (max_int from the
           top bucket); the observed max is a tighter one. *)
        min v d.d_max

let stat_value t ~cohort name stat =
  match Hashtbl.find_opt t.r_cohorts.(cohort).co_dists name with
  | None -> 0
  | Some d -> dist_stat d stat

(* ---- SLO evaluation ---- *)

type verdict = Healthy | Degraded | Unhealthy

let verdict_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

let worst a b =
  match (a, b) with
  | Unhealthy, _ | _, Unhealthy -> Unhealthy
  | Degraded, _ | _, Degraded -> Degraded
  | Healthy, Healthy -> Healthy

type slo = {
  slo_metric : string;
  slo_stat : stat;
  slo_warn : int;
  slo_fail : int;
}

type check = {
  ck_cohort : int;
  ck_metric : string;
  ck_stat : stat;
  ck_boards : int;
  ck_value : int;
  ck_warn : int;
  ck_fail : int;
  ck_verdict : verdict;
}

type outlier = {
  ol_board : int;
  ol_cohort : int;
  ol_metric : string;
  ol_value : int;
  ol_median : int;
}

type report = {
  rp_boards : int;
  rp_checks : check list;
  rp_outliers : outlier list;
  rp_verdict : verdict;
}

let evaluate ?(outlier_k = 8) ?(outlier_floor = 64) t ~slos ~iter_boards =
  let checks =
    List.concat_map
      (fun s ->
        List.init (cohorts t) (fun c ->
            let v = stat_value t ~cohort:c s.slo_metric s.slo_stat in
            let verdict =
              if v > s.slo_fail then Unhealthy
              else if v > s.slo_warn then Degraded
              else Healthy
            in
            { ck_cohort = c; ck_metric = s.slo_metric; ck_stat = s.slo_stat;
              ck_boards = t.r_cohorts.(c).co_boards; ck_value = v;
              ck_warn = s.slo_warn; ck_fail = s.slo_fail;
              ck_verdict = verdict }))
      slos
  in
  let outliers = ref [] in
  (* Distributions are frozen during the outlier pass, so each cohort's
     per-metric medians are computed once per packed schema (pooled
     fleet-wide: in practice once per cohort), not once per board. *)
  let median_plans = Array.map (fun _ -> ref None) t.r_cohorts in
  iter_boards (fun ~cohort ~board p ->
      let co = t.r_cohorts.(cohort) in
      let s = p.Metrics.p_schema in
      let plan =
        match !(median_plans.(cohort)) with
        | Some (cached, arr) when cached == s -> arr
        | _ ->
            let arr =
              Array.map
                (fun name ->
                  match Hashtbl.find_opt co.co_dists name with
                  | None -> None
                  | Some d -> Some (dist_stat d P50))
                s.Metrics.sc_names
            in
            median_plans.(cohort) := Some (s, arr);
            arr
      in
      let i = ref (-1) in
      let flag v =
        incr i;
        if v >= outlier_floor then
          match plan.(!i) with
          | None -> ()
          | Some median ->
              if v >= outlier_k * max median 1 then
                outliers :=
                  { ol_board = board; ol_cohort = cohort;
                    ol_metric = s.Metrics.sc_names.(!i); ol_value = v;
                    ol_median = median }
                  :: !outliers
      in
      Metrics.iter_packed p
        ~counter:(fun _ v -> flag v)
        ~gauge:(fun _ v -> flag v)
        ~hist:(fun _ ~count ~sum:_ -> flag count));
  let rp_outliers = List.rev !outliers in
  let rp_verdict =
    List.fold_left (fun a c -> worst a c.ck_verdict) Healthy checks
  in
  { rp_boards = boards t; rp_checks = checks; rp_outliers; rp_verdict }

(* ---- renderers ---- *)

let render_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "fleet health: %s  (%d boards, %d checks, %d outliers)\n"
       (String.uppercase_ascii (verdict_name r.rp_verdict))
       r.rp_boards
       (List.length r.rp_checks)
       (List.length r.rp_outliers));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf
           "  [%-9s] cohort %d  %s(%s) = %d  (%d boards, warn > %d, fail > \
            %d)\n"
           (verdict_name c.ck_verdict) c.ck_cohort (stat_name c.ck_stat)
           c.ck_metric c.ck_value c.ck_boards c.ck_warn c.ck_fail))
    r.rp_checks;
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  outlier board %d (cohort %d): %s = %d vs median %d\n"
           o.ol_board o.ol_cohort o.ol_metric o.ol_value o.ol_median))
    r.rp_outliers;
  Buffer.contents buf

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"verdict\": \"%s\",\n  \"boards\": %d,\n"
       (verdict_name r.rp_verdict) r.rp_boards);
  Buffer.add_string buf "  \"checks\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"cohort\": %d, \"metric\": \"%s\", \"stat\": \"%s\", \
            \"boards\": %d, \"value\": %d, \"warn\": %d, \"fail\": %d, \
            \"verdict\": \"%s\"}"
           c.ck_cohort (escape c.ck_metric) (stat_name c.ck_stat) c.ck_boards
           c.ck_value c.ck_warn c.ck_fail (verdict_name c.ck_verdict)))
    r.rp_checks;
  Buffer.add_string buf "\n  ],\n  \"outliers\": [";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"board\": %d, \"cohort\": %d, \"metric\": \"%s\", \
            \"value\": %d, \"median\": %d}"
           o.ol_board o.ol_cohort (escape o.ol_metric) o.ol_value o.ol_median))
    r.rp_outliers;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
