(* Structured trace events: a bounded ring of typed begin/end spans and
   instants, replacing the printf-style string ring.

   Recording is allocation-free: the ring is an array of mutable event
   records preallocated at creation, and [emit] overwrites fields in
   place. Wrapping drops the oldest events and counts the drops — the
   exporters report that in their metadata rather than silently losing
   history.

   Timestamps are simulation cycles, supplied by the caller (the trace
   layer never advances or reads the clock itself: instrumentation must
   not perturb simulated time). tid -1 is kernel/hardware context; a
   process's tid is its pid. Exporters: Chrome trace-event JSON
   (chrome://tracing / Perfetto loadable, ts in microseconds) and a
   plain text timeline — both single-ring and multi-lane (one ring per
   pid lane, the fleet scheduler view). *)

type kind =
  | Syscall
  | Irq_raise
  | Irq_dispatch
  | Grant_enter
  | Alarm_fire
  | Mpu_check
  | Schedule
  | Sleep
  | Upcall
  | Note
  | Fault
  | Dispatch
  | Steal
  | Park
  | Resume
  | Fast_forward

type phase = Begin | End | Instant | Complete

type event = {
  mutable e_ts : int;
  mutable e_tid : int;
  mutable e_kind : kind;
  mutable e_phase : phase;
  mutable e_dur : int; (* cycles; only meaningful for [Complete] *)
  mutable e_arg : int;
  mutable e_text : string;
}

type t = {
  cap : int;
  ring : event array; (* length max(1, cap); reused in place *)
  mutable pos : int;  (* next write index *)
  mutable total : int; (* events ever emitted *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Trace.create: capacity < 0";
  {
    cap = capacity;
    ring =
      Array.init (max 1 capacity) (fun _ ->
          { e_ts = 0; e_tid = 0; e_kind = Note; e_phase = Instant; e_dur = 0;
            e_arg = 0; e_text = "" });
    pos = 0;
    total = 0;
  }

let on t = t.cap > 0

let capacity t = t.cap

let total t = t.total

let retained t = min t.total t.cap

let dropped t = if t.total > t.cap then t.total - t.cap else 0

(* The ring write, split out of [emit] so the disabled path below
   compiles to a load + one branch + return with nothing spilled: the
   record body is only materialized behind the taken branch. Kept
   un-inlined on purpose — folding it back in is what cost 3.7 ns/op on
   every disabled-mode call in the seed measurement. *)
let[@inline never] record t ~ts ~tid kind phase ~dur ~arg ~text =
  let e = t.ring.(t.pos) in
  e.e_ts <- ts;
  e.e_tid <- tid;
  e.e_kind <- kind;
  e.e_phase <- phase;
  e.e_dur <- dur;
  e.e_arg <- arg;
  e.e_text <- text;
  t.pos <- (t.pos + 1) mod t.cap;
  t.total <- t.total + 1

let[@inline] emit t ~ts ~tid kind phase ~arg ~text =
  if t.cap > 0 then record t ~ts ~tid kind phase ~dur:0 ~arg ~text

let[@inline] emit_complete t ~ts ~dur ~tid kind ~arg ~text =
  if t.cap > 0 then record t ~ts ~tid kind Complete ~dur ~arg ~text

let note t ~ts text = emit t ~ts ~tid:(-1) Note Instant ~arg:0 ~text

(* Oldest-first iteration over retained events. The callback sees the
   live (reused) record: read it, don't stash it. *)
let iter t f =
  let n = retained t in
  for i = 0 to n - 1 do
    f t.ring.((t.pos - n + i + (2 * t.cap)) mod max 1 t.cap)
  done

let kind_name = function
  | Syscall -> "syscall"
  | Irq_raise -> "irq-raise"
  | Irq_dispatch -> "irq"
  | Grant_enter -> "grant-enter"
  | Alarm_fire -> "alarm-fire"
  | Mpu_check -> "mpu-check"
  | Schedule -> "schedule"
  | Sleep -> "sleep"
  | Upcall -> "upcall"
  | Note -> "note"
  | Fault -> "fault"
  | Dispatch -> "dispatch"
  | Steal -> "steal"
  | Park -> "park"
  | Resume -> "resume"
  | Fast_forward -> "fast-forward"

(* Human label. Notes render as their exact text so the legacy
   [Sim.recent_trace] view is unchanged. *)
let label e =
  match e.e_kind with
  | Note -> e.e_text
  | Irq_dispatch | Irq_raise ->
      Printf.sprintf "%s %d (%s)" (kind_name e.e_kind) e.e_arg e.e_text
  | _ ->
      if e.e_text = "" then kind_name e.e_kind
      else kind_name e.e_kind ^ " " ^ e.e_text

(* Retained events sorted by timestamp (stable, so same-cycle events
   keep emission order). Sorting matters because spans are emitted at
   their begin time, possibly after nested events were recorded. *)
let sorted_events t =
  let n = retained t in
  let arr = Array.make n None in
  let i = ref 0 in
  iter t (fun e ->
      arr.(!i) <- Some e;
      incr i);
  let evs = Array.map (fun e -> Option.get e) arr in
  (* stable sort by ts only *)
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare evs.(a).e_ts evs.(b).e_ts with 0 -> compare a b | c -> c)
    idx;
  Array.map (fun i -> evs.(i)) idx

let to_text ~clock_hz t =
  let buf = Buffer.create 4096 in
  let evs = sorted_events t in
  if dropped t > 0 then
    Buffer.add_string buf
      (Printf.sprintf "# %d older events dropped (ring capacity %d)\n"
         (dropped t) t.cap);
  Array.iter
    (fun e ->
      let us = float_of_int e.e_ts *. 1e6 /. float_of_int clock_hz in
      let ph =
        match e.e_phase with
        | Begin -> "B"
        | End -> "E"
        | Instant -> "."
        | Complete -> "X"
      in
      Buffer.add_string buf
        (Printf.sprintf "[%12d cyc %12.3f us] tid=%-3d %s %s\n" e.e_ts us
           e.e_tid ph (label e)))
    evs;
  Buffer.contents buf

(* Chrome trace-event JSON ("JSON object format"): loadable in
   chrome://tracing and Perfetto. pid = board (or scheduler domain in
   the fleet's multi-lane export), tid = process (+1 so the kernel's -1
   maps to thread 0); metadata events name both, and otherData carries
   the drop count and clock rate. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type lane = {
  lane_pid : int;
  lane_name : string;
  lane_tids : (int * string) list;
  lane_trace : t;
}

(* One lane's metadata records and sorted events, appended through
   [add] (which handles the JSON comma discipline). *)
let add_lane ~clock_hz add lane =
  let pid = lane.lane_pid in
  add
    (Printf.sprintf
       "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, \
        \"args\": {\"name\": \"%s\"}}"
       pid (escape lane.lane_name));
  List.iter
    (fun (tid, name) ->
      add
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": \
            %d, \"args\": {\"name\": \"%s\"}}"
           pid (tid + 1) (escape name)))
    lane.lane_tids;
  let evs = sorted_events lane.lane_trace in
  Array.iter
    (fun e ->
      let us = float_of_int e.e_ts *. 1e6 /. float_of_int clock_hz in
      let ph, extra =
        match e.e_phase with
        | Begin -> ("B", "")
        | End -> ("E", "")
        | Instant -> ("i", ", \"s\": \"t\"")
        | Complete ->
            ( "X",
              Printf.sprintf ", \"dur\": %.3f"
                (float_of_int e.e_dur *. 1e6 /. float_of_int clock_hz) )
      in
      add
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\"%s, \"ts\": \
            %.3f, \"pid\": %d, \"tid\": %d, \"args\": {\"arg\": %d, \
            \"cycles\": %d}}"
           (escape (label e)) (kind_name e.e_kind) ph extra us pid
           (e.e_tid + 1) e.e_arg e.e_ts))
    evs

let to_chrome_json_lanes ~clock_hz lanes =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\n\"displayTimeUnit\": \"ms\",\n";
  let drops = List.fold_left (fun a l -> a + dropped l.lane_trace) 0 lanes in
  let totals = List.fold_left (fun a l -> a + total l.lane_trace) 0 lanes in
  Buffer.add_string buf
    (Printf.sprintf
       "\"otherData\": {\"clock_hz\": %d, \"dropped_events\": %d, \
        \"total_events\": %d},\n"
       clock_hz drops totals);
  Buffer.add_string buf "\"traceEvents\": [\n";
  let first = ref true in
  let add line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  List.iter (add_lane ~clock_hz add) lanes;
  Buffer.add_string buf "\n]\n}\n";
  Buffer.contents buf

let to_chrome_json ?(pid = 0) ?(process_name = "board")
    ?(tid_names = [ (-1, "kernel") ]) ~clock_hz t =
  to_chrome_json_lanes ~clock_hz
    [ { lane_pid = pid; lane_name = process_name; lane_tids = tid_names;
        lane_trace = t } ]
