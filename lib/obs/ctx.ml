(* The observability context threaded through instrumented subsystems:
   one trace buffer, one metrics registry, and a clock closure reading
   the owning simulation's cycle counter. Code that can't name the Sim
   (grants, processes, capsules below the board layer) records against
   this instead.

   [disabled] is a shared inert context (zero-capacity trace, throwaway
   registry, clock pinned to 0) used as the default before a kernel
   attaches the real one — recording against it is a guarded no-op. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  clock : unit -> int; (* current simulation time, in cycles *)
}

let disabled =
  { trace = Trace.create ~capacity:0; metrics = Metrics.create ();
    clock = (fun () -> 0) }

let now t = t.clock ()
