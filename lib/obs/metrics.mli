(** Metrics registry: named counters, gauges, and log2-bucketed
    histograms, cheaply recordable from simulation hot paths.

    Handles resolve their name once, at registration; every record
    operation afterwards is a plain field update (no hashing, no
    allocation). Registration is idempotent by name — two subsystems
    registering the same name share one series — and clashing on the
    metric type raises [Invalid_argument].

    Snapshots are deterministic (sorted by name, values copied out), so
    fleets of identical boards render byte-identical output regardless
    of registration order or domain placement. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Raise the gauge to [v] if above its current value — peak tracking
    (e.g. the fleet scheduler's live-group high-water mark). Note
    {!merge} still {e sums} gauges, so a cross-domain merge of peaks is
    an upper bound, not a global peak. *)

val gauge_value : gauge -> int
val gauge_name : gauge -> string

val observe : histogram -> int -> unit
(** Record one value: count, sum, and the log2 bucket. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_name : histogram -> string

val buckets : int
(** Number of histogram buckets (64). *)

val bucket_index : int -> int
(** [bucket_index v]: 0 for [v <= 0]; otherwise [floor(log2 v) + 1],
    clamped to [buckets - 1] — i.e. bucket [b >= 1] holds values in
    [\[2^(b-1), 2^b)]. *)

val bucket_lower_bound : int -> int
(** Smallest value a bucket can hold ([min_int] for bucket 0). *)

val on_snapshot : t -> (unit -> unit) -> unit
(** Register a sync hook run (in registration order) at the start of
    every {!snapshot} — used to publish externally-held state (process
    tables, ring drop counts) as gauges without touching hot paths. *)

(** {2 Snapshots} *)

type hist_snapshot = { hs_count : int; hs_sum : int; hs_buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val quantile : hist_snapshot -> float -> int
(** Upper bound of the bucket holding the q-quantile observation
    (0 when empty, [max_int] from the top bucket): within 2x of the
    true quantile, monotone in q. *)

val merge : snapshot list -> snapshot
(** Merge by name: counters and gauges sum, histograms add bucket-wise.
    [Invalid_argument] if one name carries two metric types. *)

val render_text : snapshot -> string
(** Aligned human-readable table, histograms as count/sum/p50/p99. *)

val render_json : snapshot -> string
(** Deterministic JSON object keyed by metric name; histograms as
    [{"count", "sum", "buckets": [[index, n], ...]}] (empty buckets
    omitted). *)
