(** Metrics registry: named counters, gauges, and log2-bucketed
    histograms, cheaply recordable from simulation hot paths.

    Handles resolve their name once, at registration; every record
    operation afterwards is a plain field update (no hashing, no
    allocation). Registration is idempotent by name — two subsystems
    registering the same name share one series — and clashing on the
    metric type raises [Invalid_argument].

    Snapshots are deterministic (sorted by name, values copied out), so
    fleets of identical boards render byte-identical output regardless
    of registration order or domain placement. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Raise the gauge to [v] if above its current value — peak tracking
    (e.g. the fleet scheduler's live-group high-water mark). Note
    {!merge} still {e sums} gauges, so a cross-domain merge of peaks is
    an upper bound, not a global peak. *)

val gauge_value : gauge -> int
val gauge_name : gauge -> string

val observe : histogram -> int -> unit
(** Record one value: count, sum, and the log2 bucket. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
val histogram_name : histogram -> string

val buckets : int
(** Number of histogram buckets (64). *)

val bucket_index : int -> int
(** [bucket_index v]: 0 for [v <= 0]; otherwise [floor(log2 v) + 1],
    clamped to [buckets - 1] — i.e. bucket [b >= 1] holds values in
    [\[2^(b-1), 2^b)]. *)

val bucket_lower_bound : int -> int
(** Smallest value a bucket can hold ([min_int] for bucket 0). *)

val on_snapshot : t -> (unit -> unit) -> unit
(** Register a sync hook run (in registration order) at the start of
    every {!snapshot} — used to publish externally-held state (process
    tables, ring drop counts) as gauges without touching hot paths. *)

(** {2 Snapshots} *)

type hist_snapshot = { hs_count : int; hs_sum : int; hs_buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val quantile : hist_snapshot -> float -> int
(** Upper bound of the bucket holding the q-quantile observation
    (0 when empty, [max_int] from the top bucket): within 2x of the
    true quantile, monotone in q. *)

val merge : snapshot list -> snapshot
(** Merge by name: counters and gauges sum, histograms add bucket-wise.
    [Invalid_argument] if one name carries two metric types.

    {b Associativity contract.} Every combine is a per-name integer sum
    (counter + counter, gauge + gauge, histogram count/sum/buckets
    element-wise), so merging is associative {e and} commutative: for
    any multiset of snapshots, any merge tree — pairwise [merge],
    streaming accumulation into an {!Accum.t}, per-domain partial
    accumulators tree-merged with {!Accum.absorb} — produces the same
    snapshot, rendered sorted by name. The fleet runner relies on this
    to merge per-board stats as groups retire, in whatever order domains
    finish, and still emit byte-identical output. *)

(** {2 Packed snapshots}

    A [snapshot] assoc list costs ~10 kB of boxed heap per board; a
    100k-board fleet cannot afford to retain that. [packed] stores the
    same information as a shared immutable {!schema} (sorted names +
    kinds — pooled globally, so every board built from the same recipe
    physically shares one) plus one flat byte blob private to the
    board. The blob is a string, so the major GC never scans retained
    fleet stats — re-marking 100k boards' worth of boxed snapshots was
    the dominant cost of large fleets. Equal registries pack to
    structurally equal values regardless of domain placement: the
    layout is a pure function of the sorted (name, kind, value)
    sequence, never of global mutable ids. *)

type schema = {
  sc_names : string array;  (** sorted ascending *)
  sc_kinds : string;  (** ['c'|'g'|'h'] per sorted entry *)
}

type packed = {
  p_schema : schema;
  p_blob : string;
      (** int64-LE words, no-scan. Words [0, n): per sorted entry, the
          counter/gauge value or the absolute word offset of the
          entry's histogram record. Words [n, ...): per histogram at
          its offset: count; sum; npairs; then npairs (bucket index,
          bucket count) pairs, ascending *)
}

val packed_of : t -> packed
(** Snapshot a registry directly into packed form (runs the same sync
    hooks as {!snapshot}). [unpack (packed_of t) = snapshot t]. Sorting
    cost is paid once per distinct registration sequence via a pooled
    pack plan; subsequent boards pay two array fills. *)

val pack : snapshot -> packed

val validate_packed : packed -> (unit, string) result
(** Structural check of a packed image against its own schema: blob
    length, histogram offsets, pair counts and bucket indices all in
    range. Images built by {!packed_of}/{!pack} pass by construction;
    images rebuilt from external bytes may not. *)

val unpack : packed -> (snapshot, string) result
(** Validates first (see {!validate_packed}): a truncated or
    bit-flipped image yields [Error], never an exception. *)

val iter_packed :
  packed ->
  counter:(string -> int -> unit) ->
  gauge:(string -> int -> unit) ->
  hist:(string -> count:int -> sum:int -> unit) ->
  unit
(** Allocation-free per-series fold over a packed image (histograms
    surface as their count/sum pair). Reads are unchecked: callers
    holding images from external bytes run {!validate_packed} first —
    {!packed_of_string} already has. *)

val packed_to_string : packed -> string
(** Compact deterministic binary encoding (for digests / park
    buffers). *)

val packed_of_string : string -> (packed, string) result
(** Decode a {!packed_to_string} image. Total: truncated or corrupted
    input (bad kinds, histogram offsets or buckets out of range) yields
    [Error] with a diagnostic, never an exception. *)

val restore_packed : t -> packed -> (unit, string) result
(** Overwrite the registry's values from a packed image — the thaw side
    of board freeze/thaw. Series missing from the registry are created;
    [Error] if a name exists with a different metric type, or if the
    registry holds series the image does not (their stale values would
    survive the restore). *)

val merge_packed : packed list -> (snapshot, string) result
(** [merge] over packed snapshots without unpacking. Every image is
    {!validate_packed}-checked before any is folded: corrupt input
    yields [Error] with nothing half-merged. *)

(** {2 Streaming accumulation}

    The single merge kernel shared by pairwise {!merge}, the fleet's
    per-domain streaming accumulators, and cross-domain tree merges.
    Steady-state [add_packed] into an existing accumulator allocates
    nothing: scalars add in place and histogram pairs add into the
    accumulated bucket arrays. *)

module Accum : sig
  type t

  val create : unit -> t

  val add : t -> snapshot -> unit
  val add_packed : t -> packed -> unit

  val absorb : into:t -> t -> unit
  (** Fold a partial accumulator into [into] (tree merge across
      domains). [src] is unchanged. *)

  val to_snapshot : t -> snapshot
  (** Render the accumulated totals, sorted by name — byte-identical
      for any grouping/order of the same inputs (see the associativity
      contract on {!val-merge}). *)
end

val render_text : snapshot -> string
(** Aligned human-readable table, histograms as count/sum/p50/p99. *)

val render_json : snapshot -> string
(** Deterministic JSON object keyed by metric name; histograms as
    [{"count", "sum", "buckets": [[index, n], ...]}] (empty buckets
    omitted). *)
