(** The observability context threaded through instrumented subsystems:
    a trace buffer, a metrics registry, and a clock closure reading the
    owning simulation's cycle counter (never advancing it). *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  clock : unit -> int;  (** current simulation time, in cycles *)
}

val disabled : t
(** Shared inert context: zero-capacity trace, throwaway registry,
    clock pinned to 0. The default before a kernel attaches a real
    one. *)

val now : t -> int
