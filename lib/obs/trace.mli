(** Structured trace events: a bounded, allocation-free ring of typed
    begin/end spans and instants with a Chrome trace-event JSON exporter
    (chrome://tracing / Perfetto loadable) and a plain-text timeline.

    Timestamps are simulation cycles supplied by the caller — the trace
    layer never reads or advances the clock, so instrumentation cannot
    perturb simulated time. tid -1 is kernel/hardware context; a
    process's tid is its pid. When the ring wraps, the oldest events are
    dropped and counted; both exporters report the drop count in their
    metadata instead of losing history silently. *)

type kind =
  | Syscall  (** span around one syscall dispatch; arg = class number *)
  | Irq_raise  (** instant: line asserted; arg = line, text = name *)
  | Irq_dispatch  (** instant: handler ran; arg = line, text = name *)
  | Grant_enter  (** instant; arg = grant id, text = grant name *)
  | Alarm_fire  (** instant; arg = virtual alarms fired / compare value *)
  | Mpu_check  (** instant, slow path only; text = access kind *)
  | Schedule  (** span around one process timeslice; text = name *)
  | Sleep  (** span: CPU in deep sleep awaiting a hardware event *)
  | Upcall  (** instant: upcall delivered; arg = driver number *)
  | Note  (** free-text line (the legacy [Sim.trace] surface) *)
  | Fault  (** instant: a process faulted; text = reason *)
  | Dispatch
      (** fleet scheduler: one calendar dispatch quantum; arg = first
          board index of the group *)
  | Steal  (** fleet scheduler instant; arg = victim domain *)
  | Park  (** fleet scheduler instant: board frozen; arg = board *)
  | Resume  (** fleet scheduler instant: board thawed; arg = board *)
  | Fast_forward
      (** fleet scheduler: a fully-asleep group warped over its gap;
          arg = board, duration = cycles skipped *)

type phase =
  | Begin
  | End
  | Instant
  | Complete
      (** a span carried as one event with an explicit duration
          ([e_dur]); used where Begin/End pairs cannot nest sanely,
          e.g. fleet dispatch quanta interleaved across groups *)

type event = {
  mutable e_ts : int;  (** cycles *)
  mutable e_tid : int;  (** pid, or -1 for kernel/hardware *)
  mutable e_kind : kind;
  mutable e_phase : phase;
  mutable e_dur : int;  (** cycles; only meaningful for [Complete] *)
  mutable e_arg : int;
  mutable e_text : string;
}

type t

val create : capacity:int -> t
(** [capacity = 0] disables recording entirely: {!on} is false and
    {!emit} is a no-op. *)

val on : t -> bool
(** True when events are being recorded. Hot paths guard the [emit]
    call (and any label construction) behind this. *)

val capacity : t -> int

val total : t -> int
(** Events ever emitted, including dropped ones. *)

val retained : t -> int

val dropped : t -> int
(** Events lost to ring wrap-around. *)

val emit :
  t -> ts:int -> tid:int -> kind -> phase -> arg:int -> text:string -> unit
(** Record one event in place. Disabled mode is one field load and one
    branch — no allocation, no ring access (the write body is a
    separate non-inlined function reached only when recording). *)

val emit_complete :
  t -> ts:int -> dur:int -> tid:int -> kind -> arg:int -> text:string -> unit
(** Record a [Complete] span: a self-contained event carrying its own
    duration in cycles. Same disabled-mode cost contract as {!emit}. *)

val note : t -> ts:int -> string -> unit
(** [emit] shorthand for free-text kernel notes (tid -1). *)

val iter : t -> (event -> unit) -> unit
(** Oldest-first over retained events. The callback sees the live
    (reused) record: read fields, do not stash the record itself. *)

val kind_name : kind -> string

val label : event -> string
(** Human label; [Note] events render as their exact text. *)

val to_text : clock_hz:int -> t -> string
(** Timestamp-sorted text timeline, one line per event, with a header
    line when events were dropped. *)

type lane = {
  lane_pid : int;  (** Chrome pid; one horizontal track group *)
  lane_name : string;  (** process_name metadata for the lane *)
  lane_tids : (int * string) list;
      (** raw tid -> thread name (-1 = kernel); shifted +1 on export *)
  lane_trace : t;
}

val to_chrome_json_lanes : clock_hz:int -> lane list -> string
(** Multi-lane Chrome trace-event JSON: one pid lane per entry (the
    fleet export puts each scheduler domain and each sampled board in
    its own lane). Events within a lane are timestamp-sorted;
    [otherData] carries the summed drop/total counts. *)

val to_chrome_json :
  ?pid:int ->
  ?process_name:string ->
  ?tid_names:(int * string) list ->
  clock_hz:int ->
  t ->
  string
(** Chrome trace-event JSON (object format). [pid] is the board,
    [tid_names] maps raw tids (-1 = kernel) to thread names; tids are
    shifted by +1 on export so the kernel's -1 becomes thread 0. [ts]
    is microseconds derived from [clock_hz]; [otherData] carries
    [clock_hz], [dropped_events] and [total_events]. Equivalent to
    {!to_chrome_json_lanes} with a single lane. *)
