(** Cross-board health rollups: streaming per-metric distributions
    {e across boards}, per cohort, with SLO evaluation and outlier
    detection — the health-gating primitive for fleet runs.

    As each board retires, {!add_packed} folds its packed metrics into
    one log2 histogram per metric name (plus exact min/max/sum/count):
    counters and gauges contribute their value, histograms their
    observation count. All accumulation is element-wise addition, so
    per-domain partial rollups combined with {!absorb} in any order or
    tree shape render the same report as a single sequential pass —
    the same associativity contract as [Metrics.merge]. Memory is
    O(metrics x cohorts), independent of board count. *)

type t

val create : cohorts:int -> t
(** [cohorts] must be positive; boards are assigned to cohorts by the
    caller (the fleet uses [board mod workload_mixes], so a cohort is
    "all boards running workload mix k"). *)

val cohorts : t -> int

val boards : t -> int
(** Total boards folded in so far, across all cohorts. *)

val add_packed : t -> cohort:int -> Metrics.packed -> unit
(** Fold one retired board's packed metrics into its cohort. *)

val absorb : into:t -> t -> unit
(** Fold a partial rollup into [into] (cross-domain tree merge);
    [src] is unchanged. [Invalid_argument] if cohort counts differ. *)

(** {2 Statistics} *)

type stat = P50 | P99 | Max | Mean | Total

val stat_name : stat -> string

val stat_value : t -> cohort:int -> string -> stat -> int
(** The statistic of a metric's cross-board distribution within one
    cohort. Quantiles are bucket upper bounds clamped to the observed
    max (within 2x, monotone); a metric never seen reads 0. *)

(** {2 SLO evaluation} *)

type verdict = Healthy | Degraded | Unhealthy

val verdict_name : verdict -> string

val worst : verdict -> verdict -> verdict

type slo = {
  slo_metric : string;
  slo_stat : stat;
  slo_warn : int;  (** statistic > warn: [Degraded] *)
  slo_fail : int;  (** statistic > fail: [Unhealthy] *)
}

type check = {
  ck_cohort : int;
  ck_metric : string;
  ck_stat : stat;
  ck_boards : int;  (** boards in the cohort *)
  ck_value : int;  (** the evaluated statistic *)
  ck_warn : int;
  ck_fail : int;
  ck_verdict : verdict;
}

type outlier = {
  ol_board : int;
  ol_cohort : int;
  ol_metric : string;
  ol_value : int;
  ol_median : int;  (** the cohort median it deviated from *)
}

type report = {
  rp_boards : int;
  rp_checks : check list;  (** SLO order, then cohort order *)
  rp_outliers : outlier list;  (** board order, then schema order *)
  rp_verdict : verdict;  (** worst of all checks *)
}

val evaluate :
  ?outlier_k:int ->
  ?outlier_floor:int ->
  t ->
  slos:slo list ->
  iter_boards:((cohort:int -> board:int -> Metrics.packed -> unit) -> unit) ->
  report
(** Evaluate every SLO against every cohort, and flag outlier boards:
    a board whose per-metric value is both >= [outlier_k] (default 8)
    times the cohort median (taken as at least 1) and >= [outlier_floor]
    (default 64, a noise floor for near-zero medians). Outliers need
    the final medians, so they are a second pass: [iter_boards] must
    replay the retained per-board packed stats in a deterministic
    (board) order. The report is a pure function of the folded
    multiset of boards — byte-identical however domains interleaved. *)

val render_text : report -> string

val render_json : report -> string
(** Deterministic JSON: verdict, board count, checks, outliers. *)
