(* AST-level extraction via compiler-libs: the second-generation front
   end behind otock-check.

   Where Extract is a token lexer (enough for layering rules), this
   module parses real OCaml ASTs with [Parse.implementation] and
   summarizes the facts the dataflow analyses need:

   - the module-toplevel *mutable-state inventory*: refs, Hashtbl /
     Buffer / Bytes / Array / Queue globals, records with mutable
     fields, and their Atomic / Mutex counterparts;
   - per-binding *value references* (every identifier a binding's body
     names, with lines), the raw material for Domain_safety's
     interprocedural reachability;
   - *mutation witnesses*: identifiers passed to known in-place
     mutators (Array.set, Bytes.blit, ...), so read-only lookup tables
     (crypto T-tables) are not misreported as shared mutable state;
   - structure- and expression-level opens, for reference resolution.

   Parsing never raises: a file the compiler's parser rejects comes
   back with [a_parsed = false] and the caller reports it instead of
   silently dropping the file from the analysis. *)

type mutability =
  | Ref_cell
  | Hash_table
  | Growable_buffer
  | Byte_buffer
  | Array_buffer
  | Queue_like
  | Mutable_record
  | Atomic_cell
  | Mutex_lock

let kind_name = function
  | Ref_cell -> "ref"
  | Hash_table -> "Hashtbl"
  | Growable_buffer -> "Buffer"
  | Byte_buffer -> "bytes buffer"
  | Array_buffer -> "array"
  | Queue_like -> "queue/stack"
  | Mutable_record -> "mutable record"
  | Atomic_cell -> "Atomic"
  | Mutex_lock -> "Mutex"

(* Atomic and Mutex globals are domain-safe by construction; everything
   else in the inventory is a race when shared across fleet shards. *)
let kind_is_synchronized = function
  | Atomic_cell | Mutex_lock -> true
  | _ -> false

type global = { g_name : string; g_line : int; g_kind : mutability }

type value_ref = { r_path : string list; r_line : int }

type binding = { b_name : string; b_line : int; b_refs : value_ref list }

type t = {
  a_path : string;
  a_parsed : bool;
  a_globals : global list;
  a_bindings : binding list;
  a_opens : string list list;
  a_witnesses : value_ref list;
      (* identifier paths passed to a known in-place mutator *)
}

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let flatten (lid : Longident.t) =
  try Longident.flatten lid with _ -> []

(* --- pattern variables ------------------------------------------------ *)

let rec pattern_vars (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var v -> [ (v.Location.txt, line_of p.Parsetree.ppat_loc) ]
  | Parsetree.Ppat_alias (q, v) ->
      (v.Location.txt, line_of p.Parsetree.ppat_loc) :: pattern_vars q
  | Parsetree.Ppat_constraint (q, _) -> pattern_vars q
  | Parsetree.Ppat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

(* --- mutability classification ---------------------------------------- *)

(* Constructors whose application makes the bound value shared mutable
   state when it sits at module toplevel. The in-place cells from
   lib/core (Take_cell & friends) are mutable records behind a module
   face. *)
let mutable_constructor path =
  match path with
  | [ "ref" ] -> Some Ref_cell
  | [ "Hashtbl"; "create" ] -> Some Hash_table
  | [ "Buffer"; "create" ] -> Some Growable_buffer
  | [ "Bytes"; ("create" | "make" | "of_string" | "init" | "copy" | "sub") ] ->
      Some Byte_buffer
  | [ "Array";
      ("make" | "init" | "create_float" | "make_matrix" | "copy" | "append"
      | "of_list" | "concat") ] ->
      Some Array_buffer
  | [ "Queue"; "create" ] | [ "Stack"; "create" ] -> Some Queue_like
  | [ "Atomic"; "make" ] -> Some Atomic_cell
  | [ "Mutex"; "create" ] -> Some Mutex_lock
  | _ -> (
      match List.rev path with
      | ("make" | "empty") :: cell :: _
        when List.mem cell
               [ "Take_cell"; "Optional_cell"; "Num_cell"; "Volatile_cell" ] ->
          Some Mutable_record
      | _ -> None)

(* Classify a toplevel binding's right-hand side. Function bodies and
   lazy thunks allocate per call / per force, so the scan does not
   descend into them; everything else is part of the value built at
   module-initialization time (Some (ref 0), tuples of tables, ...). *)
let classify_rhs ~mutable_labels (e : Parsetree.expression) =
  let found = ref None in
  let note k = if !found = None then found := Some k in
  let rec go (e : Parsetree.expression) =
    if !found <> None then ()
    else
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _
      | Parsetree.Pexp_lazy _ ->
          ()
      | Parsetree.Pexp_apply (f, args) ->
          (match f.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident lid -> (
              match mutable_constructor (flatten lid.Location.txt) with
              | Some k -> note k
              | None -> ())
          | _ -> ());
          if !found = None then (
            go f;
            List.iter (fun (_, a) -> go a) args)
      | Parsetree.Pexp_array _ -> note Array_buffer
      | Parsetree.Pexp_record (fields, base) ->
          if
            List.exists
              (fun ((l : Longident.t Location.loc), _) ->
                match List.rev (flatten l.Location.txt) with
                | f :: _ -> List.mem f mutable_labels
                | [] -> false)
              fields
          then note Mutable_record
          else (
            List.iter (fun (_, v) -> go v) fields;
            Option.iter go base)
      | Parsetree.Pexp_tuple es -> List.iter go es
      | Parsetree.Pexp_construct (_, arg) | Parsetree.Pexp_variant (_, arg) ->
          Option.iter go arg
      | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_coerce (e, _, _) ->
          go e
      | Parsetree.Pexp_let (_, vbs, body) ->
          (* let-bound intermediates feed the value: a table built
             locally and returned is still a global table *)
          List.iter (fun (vb : Parsetree.value_binding) -> go vb.Parsetree.pvb_expr) vbs;
          go body
      | Parsetree.Pexp_sequence (_, body) | Parsetree.Pexp_open (_, body) ->
          go body
      | Parsetree.Pexp_ifthenelse (_, t, f) ->
          go t;
          Option.iter go f
      | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_try (_, cases) ->
          List.iter (fun (c : Parsetree.case) -> go c.Parsetree.pc_rhs) cases
      | _ -> ()
  in
  go e;
  !found

(* --- in-place mutators ------------------------------------------------ *)

(* Functions that write through a bytes/array argument. `a.(i) <- v`
   and `Bytes.set` sugar arrive from the parser as these exact
   applications, so a syntactic witness list is complete for the
   constructs the kernel uses. *)
let mutator_path path =
  match path with
  | [ "Array"; ("set" | "fill" | "blit" | "unsafe_set" | "sort") ]
  | [ "Bytes";
      ("set" | "fill" | "blit" | "blit_string" | "unsafe_set" | "unsafe_blit")
    ] ->
      true
  | _ -> false

(* --- summary extraction ----------------------------------------------- *)

let parse ~path content =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | st -> Some st
  | exception _ -> None

(* All value identifiers, opens, and mutation witnesses under [e]. *)
let scan_expr e =
  let refs = ref [] in
  let opens = ref [] in
  let witnesses = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident lid ->
              refs :=
                {
                  r_path = flatten lid.Location.txt;
                  r_line = line_of e.Parsetree.pexp_loc;
                }
                :: !refs
          | Parsetree.Pexp_apply (f, args) -> (
              match f.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident lid
                when mutator_path (flatten lid.Location.txt) ->
                  List.iter
                    (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
                      match a.Parsetree.pexp_desc with
                      | Parsetree.Pexp_ident alid ->
                          witnesses :=
                            {
                              r_path = flatten alid.Location.txt;
                              r_line = line_of a.Parsetree.pexp_loc;
                            }
                            :: !witnesses
                      | _ -> ())
                    args
              | _ -> ())
          | Parsetree.Pexp_setfield (tgt, _, _) -> (
              (* writing a field of a global record is a mutation of
                 that global *)
              match tgt.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident lid ->
                  witnesses :=
                    {
                      r_path = flatten lid.Location.txt;
                      r_line = line_of tgt.Parsetree.pexp_loc;
                    }
                    :: !witnesses
              | _ -> ())
          | Parsetree.Pexp_open (od, _) -> (
              match od.Parsetree.popen_expr.Parsetree.pmod_desc with
              | Parsetree.Pmod_ident lid ->
                  opens := flatten lid.Location.txt :: !opens
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr self e);
    }
  in
  iter.Ast_iterator.expr iter e;
  (List.rev !refs, List.rev !opens, List.rev !witnesses)

let of_structure ~path st =
  let globals = ref [] in
  let bindings = ref [] in
  let opens = ref [] in
  let witnesses = ref [] in
  let mutable_labels = ref [] in
  (* [prefix] qualifies bindings inside nested modules
     ("Reference.round_trip"), so same-file references through the
     nested module resolve. *)
  let rec structure prefix items =
    List.iter (item prefix) items
  and item prefix (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_type (_, decls) ->
        List.iter
          (fun (d : Parsetree.type_declaration) ->
            match d.Parsetree.ptype_kind with
            | Parsetree.Ptype_record labels ->
                List.iter
                  (fun (l : Parsetree.label_declaration) ->
                    if l.Parsetree.pld_mutable = Asttypes.Mutable then
                      mutable_labels :=
                        l.Parsetree.pld_name.Location.txt :: !mutable_labels)
                  labels
            | _ -> ())
          decls
    | Parsetree.Pstr_open od -> (
        match od.Parsetree.popen_expr.Parsetree.pmod_desc with
        | Parsetree.Pmod_ident lid -> opens := flatten lid.Location.txt :: !opens
        | _ -> ())
    | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let refs, local_opens, wits = scan_expr vb.Parsetree.pvb_expr in
            opens := List.rev_append local_opens !opens;
            witnesses := List.rev_append wits !witnesses;
            let vars = pattern_vars vb.Parsetree.pvb_pat in
            List.iter
              (fun (name, vline) ->
                let name = prefix ^ name in
                bindings :=
                  { b_name = name; b_line = vline; b_refs = refs } :: !bindings;
                match
                  classify_rhs ~mutable_labels:!mutable_labels
                    vb.Parsetree.pvb_expr
                with
                | Some kind ->
                    globals :=
                      { g_name = name; g_line = vline; g_kind = kind }
                      :: !globals
                | None -> ())
              vars)
          vbs
    | Parsetree.Pstr_module mb -> (
        match
          (mb.Parsetree.pmb_name.Location.txt, mb.Parsetree.pmb_expr.Parsetree.pmod_desc)
        with
        | Some name, Parsetree.Pmod_structure st ->
            structure (prefix ^ name ^ ".") st
        | _ -> ())
    | _ -> ()
  in
  structure "" st;
  {
    a_path = path;
    a_parsed = true;
    a_globals = List.rev !globals;
    a_bindings = List.rev !bindings;
    a_opens = List.rev !opens;
    a_witnesses = List.rev !witnesses;
  }

let of_source ~path content =
  match parse ~path content with
  | Some st -> of_structure ~path st
  | None ->
      {
        a_path = path;
        a_parsed = false;
        a_globals = [];
        a_bindings = [];
        a_opens = [];
        a_witnesses = [];
      }
