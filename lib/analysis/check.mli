(** otock-check orchestrator: parses every in-scope [.ml] file
    (kernel dirs) with compiler-libs and runs the {!Domain_safety} and
    {!Escape} dataflow analyses, folding findings into the same
    {!Rules.result} shape — and pragma grammar — as the syntactic
    linter, so {!Report}'s baseline ratchet applies unchanged.

    Rule ids emitted: [domain-safety], [allow-escape], and
    [check-parse] for files compiler-libs rejects (an unparsable file
    is an unanalyzed file; the gate must not silently narrow). *)

val run : ?entry_files:string list -> Source.file list -> Rules.result
(** [entry_files] defaults to {!Taxonomy.shard_entry_files}. *)
