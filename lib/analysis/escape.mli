(** Allow-window escape analysis (otock-check's second pass).

    [Kernel.with_allow_rw]/[with_allow_ro] lend a capsule a
    [Subslice.t] window for exactly the closure's extent; the range is
    revoked at unallow. This pass flags borrows that outlive the
    closure — stored into a ref / mutable field / container, returned
    (bare, wrapped, or captured in a returned closure) — and
    [Kernel.allow_window] clones stashed into module-toplevel globals,
    where they would outlive the board itself. *)

type finding = { f_file : string; f_line : int; f_message : string }

val analyze :
  path:string -> global_names:string list -> Parsetree.structure -> finding list
(** [global_names] are the file's module-toplevel bindings (from
    {!Ast_extract}), used to tell a global stash from capsule instance
    state. Findings come back in source order. *)
