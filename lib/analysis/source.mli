(** Source-tree discovery: loads every [.ml]/[.mli]/[dune] file under
    {!Taxonomy.scan_dirs} with repo-relative paths. *)

type kind = Ml | Mli | Dune

type file = { path : string; kind : kind; content : string }

val find_root : unit -> string option
(** Walk upward from the cwd until [lib/core] and [dune-project] are
    visible (dune runs tests inside [_build]). *)

val scan : root:string -> file list

val scan_dir : root:string -> string -> file list
(** Scan a single repo-relative directory. *)

val count_lines : string -> int

val read_file : string -> string

val file : path:string -> content:string -> file
(** Build an in-memory file (for tests); kind inferred from the path. *)
