(** AST-level extraction via compiler-libs ([Parse] + [Ast_iterator]):
    the front end of otock-check. Summarizes, per [.ml] file, the
    module-toplevel mutable-state inventory, per-binding value
    references (for interprocedural reachability), in-place mutation
    witnesses, and opens. Parsing never raises — a rejected file comes
    back with [a_parsed = false]. *)

type mutability =
  | Ref_cell
  | Hash_table
  | Growable_buffer
  | Byte_buffer
  | Array_buffer
  | Queue_like
  | Mutable_record
  | Atomic_cell
  | Mutex_lock

val kind_name : mutability -> string

val kind_is_synchronized : mutability -> bool
(** Atomic and Mutex globals are domain-safe by construction. *)

type global = {
  g_name : string;  (** Nested-module bindings are dotted: ["M.latch"]. *)
  g_line : int;
  g_kind : mutability;
}

type value_ref = { r_path : string list; r_line : int }

type binding = { b_name : string; b_line : int; b_refs : value_ref list }

type t = {
  a_path : string;
  a_parsed : bool;
  a_globals : global list;
  a_bindings : binding list;
  a_opens : string list list;
  a_witnesses : value_ref list;
      (** Identifier paths passed to a known in-place mutator
          ([Array.set], [Bytes.blit], field assignment, ...): a
          bytes/array global with no witness anywhere is a read-only
          table, not shared mutable state. *)
}

val of_source : path:string -> string -> t

val parse : path:string -> string -> Parsetree.structure option
(** The raw parse, for analyses ({!Escape}) that walk the tree
    themselves. [None] on any parse error. *)
