(** Syntactic extraction of module references, opens, attributes and
    allowlist pragmas from OCaml sources, and of stanzas from dune
    files. Comment- and string-aware with exact line accounting. *)

type reference = {
  ref_modules : string list;
      (** Uppercase path components, outermost first:
          [Tock_crypto.Schnorr.keypair] gives
          [\["Tock_crypto"; "Schnorr"\]]. *)
  ref_member : string option;  (** Trailing lowercase member, if any. *)
  ref_line : int;
}

type open_decl = {
  open_modules : string list;
  open_line : int;
  open_scoped : bool;
      (** [let open M in ...]: expression-scoped. Scoped opens still
          resolve unqualified references, but are not themselves
          wholesale-open edges (a [let open Tock in] inside one function
          is not the file importing the kernel wholesale). *)
}

type attribute = { attr_text : string; attr_line : int }

type pragma = {
  pragma_rule : string;  (** Rule id, or ["*"] for all rules. *)
  pragma_file_level : bool;
      (** [allow-file] suppresses the rule for the whole file;
          [allow] only for the pragma's line and the next. *)
  pragma_note : string;  (** Justification text after the rule id. *)
  pragma_line : int;
}

type t = {
  refs : reference list;
  opens : open_decl list;
  attributes : attribute list;
  pragmas : pragma list;
}

val of_ml : string -> t
(** Lex an [.ml]/[.mli] source. Never raises on malformed input — this
    runs over whatever is in the tree. *)

val pragmas_of_comment : line:int -> string -> pragma list

type stanza = {
  stanza_kind : string;
  stanza_names : string list;
  stanza_libraries : (string * int) list;
  stanza_line : int;
}

val dune_stanzas : string -> stanza list
(** Stanzas of kind library/executable/executables/test, with their
    [name]/[names] and [libraries] fields. *)
