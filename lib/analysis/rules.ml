(* The architecture-conformance rule set, grounded in the paper:

   - layering (§4.1, Fig. 2): capsules reach hardware only through the
     HIL/adaptors in the core kernel; userland sees only the syscall ABI;
     crypto primitives are reachable only from the hw engines and TBF.
   - capability non-forgeability (§4.4, Listing 1): `Trusted_mint` may
     be named only by trusted board-initialization code and tests.
   - unsafe-analogue confinement (Fig. 5): `Obj.magic`, warning
     suppressions, missing interfaces and raw `Subslice` buffer escapes
     are the OCaml stand-ins for `unsafe` and must stay inside the
     trusted set.
   - `Take_cell.take` without a restoring `put`/`replace` in the same
     file is the buffer-loss bug Tock's ownership types prevent
     statically; we lint for it heuristically.

   Violations can be suppressed by an inline pragma carrying a
   justification — `(* otock-lint: allow <rule> <why> *)` on the same or
   previous line, or `allow-file` for a whole file — or grandfathered in
   the committed baseline (see Report). *)

type violation = {
  v_rule : string;
  v_file : string;
  v_line : int;
  v_message : string;
}

type result = {
  violations : violation list;  (* not suppressed by a pragma *)
  suppressed : (violation * Extract.pragma) list;
}

let v rule file line fmt =
  Printf.ksprintf
    (fun m -> { v_rule = rule; v_file = file; v_line = line; v_message = m })
    fmt

let cat_of (n : Dep_graph.node) = n.Dep_graph.node_category

let edge_target_name (e : Dep_graph.edge) =
  let open Dep_graph in
  match e.edge_submodule with
  | Some s -> e.edge_lib.Taxonomy.lib_root_module ^ "." ^ s
  | None -> e.edge_lib.Taxonomy.lib_root_module

(* --- layering --------------------------------------------------------- *)

(* Source-level counterpart of Taxonomy.allowed_lib_deps: which otock
   libraries may a file of the given category name in its code? The
   capsule set additionally admits tock_tbf (binary-format parsing is
   data-only; app_loader and the signature checker consume it), which
   the dune matrix mirrors. *)
let allowed_source_targets (cat : Taxonomy.category) =
  match cat with
  | Taxonomy.Capsule -> Some [ "tock"; "tock_capsules"; "tock_tbf"; "tock_obs" ]
  | Taxonomy.Userland -> Some [ "tock"; "tock_userland" ]
  | _ -> None (* other categories are constrained by specific rules below *)

let rule_capsule_layering (n : Dep_graph.node) =
  match cat_of n with
  | Some Taxonomy.Capsule ->
      List.filter_map
        (fun (e : Dep_graph.edge) ->
          let name = e.Dep_graph.edge_lib.Taxonomy.lib_name in
          match allowed_source_targets Taxonomy.Capsule with
          | Some allowed when not (List.mem name allowed) ->
              Some
                (v "capsule-layering" n.Dep_graph.node_path
                   e.Dep_graph.edge_line
                   "capsule references %s; capsules may reach hardware only \
                    through the core kernel's Hil/Adaptors (paper Fig. 2)"
                   (edge_target_name e))
          | _ -> None)
        n.Dep_graph.node_edges
  | _ -> []

let rule_userland_internals (n : Dep_graph.node) =
  match cat_of n with
  | Some Taxonomy.Userland ->
      List.filter_map
        (fun (e : Dep_graph.edge) ->
          let open Dep_graph in
          let lib = e.edge_lib.Taxonomy.lib_name in
          if lib = "tock_userland" then None
          else if lib <> "tock" then
            Some
              (v "userland-kernel-internals" n.node_path e.edge_line
                 "userland references %s; userland code sees only the \
                  syscall ABI (paper Fig. 2)"
                 (edge_target_name e))
          else
            match e.edge_submodule with
            | Some s when List.mem s Taxonomy.userland_core_allowed -> None
            | Some s ->
                Some
                  (v "userland-kernel-internals" n.node_path e.edge_line
                     "userland references kernel internal Tock.%s; only the \
                      ABI surface (%s) is permitted"
                     s
                     (String.concat ", " Taxonomy.userland_core_allowed))
            | None ->
                Some
                  (v "userland-kernel-internals" n.node_path e.edge_line
                     "userland opens Tock wholesale; name the ABI modules \
                      explicitly so the boundary stays visible"))
        n.Dep_graph.node_edges
  | _ -> []

let rule_crypto_confinement (n : Dep_graph.node) =
  match cat_of n with
  | Some (Taxonomy.Hw | Taxonomy.Tbf | Taxonomy.Crypto | Taxonomy.Tooling) | None
    ->
      []
  | Some cat ->
      List.filter_map
        (fun (e : Dep_graph.edge) ->
          if e.Dep_graph.edge_lib.Taxonomy.lib_name = "tock_crypto" then
            Some
              (v "crypto-confinement" n.Dep_graph.node_path
                 e.Dep_graph.edge_line
                 "%s code references %s; crypto primitives are reachable \
                  only from hw engines and tbf"
                 (Taxonomy.category_name cat) (edge_target_name e))
          else None)
        n.Dep_graph.node_edges

(* --- capability non-forgeability -------------------------------------- *)

let mint_allowed path =
  Taxonomy.starts_with "lib/boards/" path
  || Taxonomy.starts_with "test/" path
  || Taxonomy.module_base path = "capability" (* the defining module *)
     && Taxonomy.starts_with "lib/core/" path

let rule_mint_confinement (n : Dep_graph.node) =
  if mint_allowed n.Dep_graph.node_path then []
  else
    List.filter_map
      (fun (r : Extract.reference) ->
        if List.mem "Trusted_mint" r.Extract.ref_modules then
          Some
            (v "mint-confinement" n.Dep_graph.node_path r.Extract.ref_line
               "Trusted_mint referenced outside lib/boards and test/: \
                capability tokens are forgeable from here (paper §4.4, \
                Listing 1)")
        else None)
      n.Dep_graph.node_extract.Extract.refs

(* --- unsafe-analogue confinement -------------------------------------- *)

let trusted (n : Dep_graph.node) =
  Taxonomy.trust_of_path n.Dep_graph.node_path = Taxonomy.Trusted

let tooling (n : Dep_graph.node) = cat_of n = Some Taxonomy.Tooling

let rule_obj_magic (n : Dep_graph.node) =
  if trusted n then []
  else
    List.filter_map
      (fun (r : Extract.reference) ->
        if r.Extract.ref_modules = [ "Obj" ] then
          Some
            (v "obj-magic" n.Dep_graph.node_path r.Extract.ref_line
               "Obj.%s outside the trusted set: this is the unsafe-analogue \
                and belongs in lib/hw or trusted lib/core only"
               (Option.value ~default:"" r.Extract.ref_member))
        else None)
      n.Dep_graph.node_extract.Extract.refs

let suppression_attr text =
  (* [@warning "-..."], [@@@warning "-..."], [@ocaml.warning "-..."] *)
  let has sub =
    let ls = String.length sub and lt = String.length text in
    let rec go i = i + ls <= lt && (String.sub text i ls = sub || go (i + 1)) in
    go 0
  in
  has "warning" && has "\"-"

let rule_warning_suppression (n : Dep_graph.node) =
  if trusted n || tooling n then []
  else
    List.filter_map
      (fun (a : Extract.attribute) ->
        if suppression_attr a.Extract.attr_text then
          Some
            (v "warning-suppression" n.Dep_graph.node_path a.Extract.attr_line
               "warning suppression %s outside the trusted set hides exactly \
                the diagnostics the Fig. 5 discipline depends on"
               (String.trim a.Extract.attr_text))
        else None)
      n.Dep_graph.node_extract.Extract.attributes

let rule_missing_mli (g : Dep_graph.t) =
  List.filter_map
    (fun (n : Dep_graph.node) ->
      let p = n.Dep_graph.node_path in
      if
        Taxonomy.starts_with "lib/" p
        && Filename.check_suffix p ".ml"
        && not (List.mem (p ^ "i") g.Dep_graph.mli_paths)
      then
        Some
          (v "missing-mli" p 1
             "library module without an interface: every lib/ module \
              declares its surface so the trusted boundary is auditable")
      else None)
    g.Dep_graph.nodes

let rule_subslice_escape (n : Dep_graph.node) =
  if trusted n || tooling n then []
  else
    List.filter_map
      (fun (r : Extract.reference) ->
        match (r.Extract.ref_modules, r.Extract.ref_member) with
        | mods, Some "underlying" when List.exists (( = ) "Subslice") mods ->
            Some
              (v "subslice-escape" n.Dep_graph.node_path r.Extract.ref_line
                 "Subslice.underlying exposes the raw buffer behind the \
                  window; outside trusted DMA models use the checked \
                  window API (paper §4.2)")
        | _ -> None)
      n.Dep_graph.node_extract.Extract.refs

(* A capsule reaching for [Bytes.sub]/[Bytes.copy] is copying payload the
   allow-window discipline says it should window in place: the zero-copy
   I/O path (paper §4.2) moves buffers from syscall to hardware as
   [Subslice] windows, and a fresh heap copy on the data plane is exactly
   the cost it eliminates. Deliberate copies (retained copying oracles,
   rare compaction, load-time snapshots) carry a pragma'd justification. *)
let rule_capsule_byte_copy (n : Dep_graph.node) =
  match cat_of n with
  | Some Taxonomy.Capsule ->
      List.filter_map
        (fun (r : Extract.reference) ->
          match (r.Extract.ref_modules, r.Extract.ref_member) with
          | [ "Bytes" ], Some (("sub" | "copy") as m) ->
              Some
                (v "capsule-byte-copy" n.Dep_graph.node_path
                   r.Extract.ref_line
                   "Bytes.%s in a capsule: data-plane code operates on \
                    allow windows in place (Subslice); justify deliberate \
                    copies with a pragma"
                   m)
          | _ -> None)
        n.Dep_graph.node_extract.Extract.refs
  | _ -> []

(* A kernel or capsule module writing straight to the host's stdout is
   bypassing both the console capsule and the structured observability
   layer: on a real board there is no stdout, and in the simulator the
   bytes vanish from every trace and metric. Debug output goes through
   [Debug_writer] (which owns the escape hatch) or the Tock_obs trace;
   deliberate cases carry a pragma. *)
let raw_print_members = [ "printf"; "eprintf" ]

let bare_print_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "prerr_string"; "prerr_endline"; "prerr_newline";
  ]

let rule_capsule_raw_print (n : Dep_graph.node) =
  match cat_of n with
  | Some (Taxonomy.Core | Taxonomy.Capsule)
    when Taxonomy.module_base n.Dep_graph.node_path <> "debug_writer" ->
      List.filter_map
        (fun (r : Extract.reference) ->
          let flag what =
            Some
              (v "capsule-raw-print" n.Dep_graph.node_path r.Extract.ref_line
                 "%s writes to the host console from kernel/capsule code; \
                  route debug output through Debug_writer or the Tock_obs \
                  trace (pragma deliberate cases)"
                 what)
          in
          match (r.Extract.ref_modules, r.Extract.ref_member) with
          | [ "Stdlib" ], Some m when List.mem m bare_print_idents -> flag m
          | mods, Some m
            when mods <> []
                 && List.mem (List.nth mods (List.length mods - 1))
                      [ "Printf"; "Format" ]
                 && List.mem m raw_print_members ->
              flag
                (List.nth mods (List.length mods - 1) ^ "." ^ m)
          | _ -> None)
        n.Dep_graph.node_extract.Extract.refs
  | _ -> []

(* --- Take_cell discipline --------------------------------------------- *)

let take_cell_ref member (r : Extract.reference) =
  (match r.Extract.ref_modules with
  | [] -> false
  | mods -> List.nth mods (List.length mods - 1) = "Take_cell")
  && r.Extract.ref_member = Some member

let rule_take_without_restore (n : Dep_graph.node) =
  if tooling n then []
  else
    let refs = n.Dep_graph.node_extract.Extract.refs in
    let takes = List.filter (take_cell_ref "take") refs in
    let restores =
      List.exists (take_cell_ref "put") refs
      || List.exists (take_cell_ref "replace") refs
    in
    if takes = [] || restores then []
    else
      List.map
        (fun (r : Extract.reference) ->
          v "take-without-restore" n.Dep_graph.node_path r.Extract.ref_line
            "Take_cell.take with no put/replace anywhere in this file: the \
             buffer can be lost on every path (use Take_cell.map, or \
             restore explicitly)")
        takes

(* --- fleet metric namespace -------------------------------------------- *)

(* Every metric the fleet layer registers must live under the "fleet."
   prefix: fleet scheduler metrics and per-board kernel metrics meet in
   one merged snapshot (Fleet.fr_metrics), and a bare name registered
   from lib/fleet would collide with — or shadow — a board-side series.
   Registration is a call like [Metrics.counter reg "fleet.sched.x"];
   the name literal sits on the same line or, when formatted long, the
   next one. Content-level scan (the extractor drops string literals),
   with the usual pragma escape for deliberate exceptions. *)

let registration_calls =
  [ "Metrics.counter"; "Metrics.gauge"; "Metrics.histogram" ]

let find_from text pos sub =
  let ls = String.length sub and lt = String.length text in
  let rec go i =
    if i + ls > lt then None
    else if String.sub text i ls = sub then Some i
    else go (i + 1)
  in
  go pos

let string_literal_after line pos =
  match String.index_from_opt line pos '"' with
  | None -> None
  | Some q -> (
      match String.index_from_opt line (q + 1) '"' with
      | None -> None
      | Some e -> Some (String.sub line (q + 1) (e - q - 1)))

let ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let rule_fleet_metric_namespace (files : Source.file list) =
  List.concat_map
    (fun (f : Source.file) ->
      if
        not
          (Taxonomy.starts_with "lib/fleet/" f.Source.path
          && f.Source.kind = Source.Ml)
      then []
      else
        let lines = Array.of_list (String.split_on_char '\n' f.Source.content) in
        let viols = ref [] in
        Array.iteri
          (fun i line ->
            List.iter
              (fun call ->
                let rec scan pos =
                  match find_from line pos call with
                  | None -> ()
                  | Some p ->
                      let after = p + String.length call in
                      (* skip partial-identifier matches (counter_value) *)
                      if after < String.length line && ident_char line.[after]
                      then scan after
                      else begin
                        let lit =
                          match string_literal_after line after with
                          | Some l -> Some l
                          | None ->
                              if i + 1 < Array.length lines then
                                string_literal_after lines.(i + 1) 0
                              else None
                        in
                        (match lit with
                        | Some name
                          when not (Taxonomy.starts_with "fleet." name) ->
                            viols :=
                              v "fleet-metric-namespace" f.Source.path (i + 1)
                                "fleet code registers metric %S outside the \
                                 fleet.* namespace; fleet and per-board \
                                 series share one merged snapshot, so bare \
                                 names collide"
                                name
                              :: !viols
                        | _ -> ());
                        scan after
                      end
                in
                scan 0)
              registration_calls)
          lines;
        List.rev !viols)
    files

(* --- dune-level rules -------------------------------------------------- *)

(* Category of a stanza: judged by its first module's path so the two
   bin/ executables (a board-like simulator and the lint tool) classify
   independently. *)
let stanza_category (d : Dep_graph.dune_stanza) =
  let name =
    match d.Dep_graph.stanza.Extract.stanza_names with
    | n :: _ -> n
    | [] -> "x"
  in
  Taxonomy.categorize (d.Dep_graph.dune_dir ^ "/" ^ name ^ ".ml")

let rule_dune_layering (d : Dep_graph.dune_stanza) =
  match stanza_category d with
  | None -> []
  | Some cat ->
      let allowed = Taxonomy.allowed_lib_deps cat in
      List.filter_map
        (fun (dep, line) ->
          match Taxonomy.library_by_name dep with
          | Some _ when not (List.mem dep allowed) ->
              Some
                (v "dune-layering" d.Dep_graph.dune_path line
                   "%s stanza depends on %s, outside the layering matrix \
                    for %s code"
                   d.Dep_graph.stanza.Extract.stanza_kind dep
                   (Taxonomy.category_name cat))
          | _ -> None)
        d.Dep_graph.stanza.Extract.stanza_libraries

(* A stanza's source nodes: files in its directory. (No stanza in this
   tree uses a (modules ...) partition except bin/, where both
   executables are single-module and share no deps worth splitting;
   attribute edges dir-wide.) *)
let rule_unused_lib_dep (g : Dep_graph.t) (d : Dep_graph.dune_stanza) =
  let nodes = Dep_graph.nodes_in_dir g d.Dep_graph.dune_dir in
  let used lib_name =
    List.exists
      (fun (n : Dep_graph.node) ->
        List.exists
          (fun (e : Dep_graph.edge) ->
            e.Dep_graph.edge_lib.Taxonomy.lib_name = lib_name
            && n.Dep_graph.node_lib <> Some e.Dep_graph.edge_lib)
          n.Dep_graph.node_edges)
      nodes
  in
  List.filter_map
    (fun (dep, line) ->
      match Taxonomy.library_by_name dep with
      | Some _ when not (used dep) ->
          Some
            (v "unused-lib-dep" d.Dep_graph.dune_path line
               "declared dependency %s is never referenced by %s sources; \
                stale edges hide the real architecture"
               dep d.Dep_graph.dune_dir)
      | _ -> None)
    d.Dep_graph.stanza.Extract.stanza_libraries

(* An otock library referenced in code must be a *declared* (direct)
   dependency: implicit transitive visibility silently widens the
   architecture. Own library and stdlib/externals are exempt. Declared
   deps are unioned across all stanzas of the directory (bin/ holds two
   single-module executables). *)
let rule_undeclared_dep (g : Dep_graph.t) dir =
  let declared =
    List.concat_map
      (fun (d : Dep_graph.dune_stanza) ->
        if d.Dep_graph.dune_dir = dir then
          List.map fst d.Dep_graph.stanza.Extract.stanza_libraries
        else [])
      g.Dep_graph.stanzas
    @ List.map
        (fun (l : Taxonomy.library) -> l.Taxonomy.lib_name)
        (match Taxonomy.library_of_path (dir ^ "/x.ml") with
        | Some l -> [ l ]
        | None -> [])
  in
  Dep_graph.nodes_in_dir g dir
  |> List.concat_map (fun (n : Dep_graph.node) ->
         List.filter_map
           (fun (e : Dep_graph.edge) ->
             let name = e.Dep_graph.edge_lib.Taxonomy.lib_name in
             if List.mem name declared then None
             else
               Some
                 (v "undeclared-dep" n.Dep_graph.node_path
                    e.Dep_graph.edge_line
                    "references %s but %s/dune does not declare %s: the \
                     edge exists only through implicit transitive deps"
                    (edge_target_name e) dir name))
           n.Dep_graph.node_edges)

(* --- driver ------------------------------------------------------------ *)

let all_rule_ids =
  [
    "capsule-layering"; "userland-kernel-internals"; "crypto-confinement";
    "mint-confinement"; "obj-magic"; "warning-suppression"; "missing-mli";
    "subslice-escape"; "capsule-byte-copy"; "capsule-raw-print";
    "take-without-restore"; "fleet-metric-namespace"; "dune-layering";
    "unused-lib-dep"; "undeclared-dep";
  ]

(* Shared with otock-check: one pragma grammar, one matching rule. *)
let suppress ~pragmas_for violations =
  let matching viol =
    List.find_opt
      (fun (p : Extract.pragma) ->
        (p.Extract.pragma_rule = viol.v_rule || p.Extract.pragma_rule = "*")
        && (p.Extract.pragma_file_level
           || viol.v_line = p.Extract.pragma_line
           || viol.v_line = p.Extract.pragma_line + 1))
      (pragmas_for viol.v_file)
  in
  List.partition_map
    (fun viol ->
      match matching viol with
      | None -> Left viol
      | Some p -> Right (viol, p))
    violations

let apply_pragmas (g : Dep_graph.t) violations =
  let pragmas_for file =
    match
      List.find_opt (fun (n : Dep_graph.node) -> n.Dep_graph.node_path = file)
        g.Dep_graph.nodes
    with
    | Some n -> n.Dep_graph.node_extract.Extract.pragmas
    | None -> []
  in
  suppress ~pragmas_for violations

let run (files : Source.file list) =
  let g = Dep_graph.build files in
  let per_node =
    List.concat_map
      (fun n ->
        rule_capsule_layering n @ rule_userland_internals n
        @ rule_crypto_confinement n @ rule_mint_confinement n
        @ rule_obj_magic n @ rule_warning_suppression n
        @ rule_subslice_escape n @ rule_capsule_byte_copy n
        @ rule_capsule_raw_print n @ rule_take_without_restore n)
      g.Dep_graph.nodes
  in
  let per_stanza =
    List.concat_map
      (fun d -> rule_dune_layering d @ rule_unused_lib_dep g d)
      g.Dep_graph.stanzas
  in
  let dirs =
    List.sort_uniq compare
      (List.map (fun d -> d.Dep_graph.dune_dir) g.Dep_graph.stanzas)
  in
  let per_dir = List.concat_map (rule_undeclared_dep g) dirs in
  let all =
    per_node @ per_stanza @ per_dir @ rule_missing_mli g
    @ rule_fleet_metric_namespace files
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.v_file b.v_file with
        | 0 -> (
            match compare a.v_line b.v_line with
            | 0 -> compare a.v_rule b.v_rule
            | c -> c)
        | c -> c)
      all
  in
  let violations, suppressed = apply_pragmas g sorted in
  { violations; suppressed }
