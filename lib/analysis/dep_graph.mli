(** The module-reference graph: source files with their syntactic
    extraction and resolved edges to otock libraries, plus the dune
    stanza inventory. *)

type edge = {
  edge_line : int;
  edge_lib : Taxonomy.library;
  edge_submodule : string option;
      (** [Tock.Kernel.x] gives [Some "Kernel"]; a bare [open Tock]
          gives [None]. *)
  edge_member : string option;
  edge_via_open : bool;
}

type node = {
  node_path : string;
  node_lib : Taxonomy.library option;
  node_category : Taxonomy.category option;
  node_extract : Extract.t;
  node_edges : edge list;
}

type dune_stanza = {
  dune_path : string;
  dune_dir : string;
  stanza : Extract.stanza;
}

type t = {
  nodes : node list;
  stanzas : dune_stanza list;
  mli_paths : string list;
}

val build : Source.file list -> t

val module_name_of_path : string -> string

val nodes_in_dir : t -> string -> node list
