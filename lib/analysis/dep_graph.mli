(** The module-reference graph: source files with their syntactic
    extraction and resolved edges to otock libraries, plus the dune
    stanza inventory. *)

type edge = {
  edge_line : int;
  edge_lib : Taxonomy.library;
  edge_submodule : string option;
      (** [Tock.Kernel.x] gives [Some "Kernel"]; a bare [open Tock]
          gives [None]. *)
  edge_member : string option;
  edge_via_open : bool;
}

type node = {
  node_path : string;
  node_lib : Taxonomy.library option;
  node_category : Taxonomy.category option;
  node_extract : Extract.t;
  node_edges : edge list;
}

type dune_stanza = {
  dune_path : string;
  dune_dir : string;
  stanza : Extract.stanza;
}

type t = {
  nodes : node list;
  stanzas : dune_stanza list;
  mli_paths : string list;
}

val build : Source.file list -> t

val module_name_of_path : string -> string

val nodes_in_dir : t -> string -> node list

(** Deterministic directed-graph kernel over integer vertices, shared
    by the dataflow analyses ({!Domain_safety}'s binding-reachability
    worklist). Every result depends only on the edge {e set}, never on
    edge insertion order. *)
module Digraph : sig
  type g

  val make : int -> g
  (** [make n] is an edgeless graph over vertices [0 .. n-1]. *)

  val add_edge : g -> int -> int -> unit
  (** Idempotent: parallel edges collapse. *)

  val succs : g -> int -> int list
  (** Sorted, deduplicated successors. *)

  val size : g -> int

  val reachable : g -> int list -> bool array
  (** Transitive closure of the root set (roots included). *)

  val topo_sort : g -> int list option
  (** A topological order picking the smallest ready vertex first
      (canonical for a given edge set), or [None] iff the graph has a
      directed cycle. *)

  val has_cycle : g -> bool
end
