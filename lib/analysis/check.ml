(* otock-check: the AST-level companion to the syntactic linter.

   Where otock-lint pattern-matches tokens, otock-check parses real
   OCaml ASTs (compiler-libs [Parse] + [Ast_iterator]) and runs two
   interprocedural dataflow passes over them:

   - {!Domain_safety}: module-toplevel mutable state reachable from the
     fleet's per-domain shard entry points without Atomic/Mutex
     ([domain-safety]);
   - {!Escape}: [Subslice.t] allow-window borrows outliving their
     [with_allow] scope, and [allow_window] clones stashed in globals
     ([allow-escape]).

   A file compiler-libs cannot parse is itself a finding
   ([check-parse]): an unparsable file is an unanalyzed file, and the
   gate must not silently narrow.

   Findings reuse {!Rules.violation} and the pragma grammar, so the
   {!Report} baseline/ratchet machinery applies unchanged. *)

let in_scope path =
  List.exists (fun d -> Taxonomy.starts_with (d ^ "/") path)
    Taxonomy.kernel_dirs

let run ?entry_files (files : Source.file list) : Rules.result =
  let ml_files =
    List.filter
      (fun (f : Source.file) ->
        f.Source.kind = Source.Ml && in_scope f.Source.path)
      files
  in
  let ml_files =
    List.sort
      (fun (a : Source.file) b -> compare a.Source.path b.Source.path)
      ml_files
  in
  let summaries =
    List.map
      (fun (f : Source.file) ->
        Ast_extract.of_source ~path:f.Source.path f.Source.content)
      ml_files
  in
  let parse_violations =
    List.filter_map
      (fun (a : Ast_extract.t) ->
        if a.Ast_extract.a_parsed then None
        else
          Some
            {
              Rules.v_rule = "check-parse";
              v_file = a.Ast_extract.a_path;
              v_line = 1;
              v_message =
                "file does not parse with compiler-libs: otock-check \
                 cannot analyze it, so its findings are unknown";
            })
      summaries
  in
  let parsed = List.filter (fun a -> a.Ast_extract.a_parsed) summaries in
  let safety_violations =
    List.map
      (fun (f : Domain_safety.finding) ->
        {
          Rules.v_rule = "domain-safety";
          v_file = f.Domain_safety.f_file;
          v_line = f.Domain_safety.f_line;
          v_message = f.Domain_safety.f_message;
        })
      (Domain_safety.analyze ?entry_files parsed)
  in
  let last_component name =
    match List.rev (String.split_on_char '.' name) with
    | x :: _ -> x
    | [] -> name
  in
  let escape_violations =
    List.concat_map
      (fun ((f : Source.file), (a : Ast_extract.t)) ->
        match Ast_extract.parse ~path:f.Source.path f.Source.content with
        | None -> []
        | Some st ->
            let global_names =
              List.sort_uniq compare
                (List.concat_map
                   (fun (g : Ast_extract.global) ->
                     [ g.Ast_extract.g_name;
                       last_component g.Ast_extract.g_name ])
                   a.Ast_extract.a_globals)
            in
            List.map
              (fun (e : Escape.finding) ->
                {
                  Rules.v_rule = "allow-escape";
                  v_file = e.Escape.f_file;
                  v_line = e.Escape.f_line;
                  v_message = e.Escape.f_message;
                })
              (Escape.analyze ~path:f.Source.path ~global_names st))
      (List.combine ml_files summaries)
  in
  let all =
    List.sort
      (fun (a : Rules.violation) b ->
        match compare a.Rules.v_file b.Rules.v_file with
        | 0 -> (
            match compare a.Rules.v_line b.Rules.v_line with
            | 0 -> compare a.Rules.v_rule b.Rules.v_rule
            | c -> c)
        | c -> c)
      (parse_violations @ safety_violations @ escape_violations)
  in
  let pragma_table = Hashtbl.create 64 in
  List.iter
    (fun (f : Source.file) ->
      Hashtbl.replace pragma_table f.Source.path
        (Extract.of_ml f.Source.content).Extract.pragmas)
    ml_files;
  let pragmas_for file =
    Option.value ~default:[] (Hashtbl.find_opt pragma_table file)
  in
  let violations, suppressed = Rules.suppress ~pragmas_for all in
  { Rules.violations; suppressed }
