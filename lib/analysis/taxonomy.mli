(** Shared trust taxonomy: the paper's four architecture categories and
    the trusted/safe ("unsafe-analogue") split, consumed by both the
    architecture linter and the Fig. 5 LoC analysis so there is exactly
    one classification of every source path. *)

type category =
  | Core  (** lib/core — kernel core: scheduler, grants, capabilities. *)
  | Hw  (** lib/hw — simulated chips; the unsafe-analogue substrate. *)
  | Crypto  (** lib/crypto — primitives backing hw engines and TBF. *)
  | Tbf  (** lib/tbf — Tock binary format parsing/verification. *)
  | Capsule  (** lib/capsules — untrusted drivers above the HIL. *)
  | Userland  (** lib/userland — syscall-ABI client code. *)
  | Board  (** lib/boards, bin/, examples/ — trusted composition roots. *)
  | Obs  (** lib/obs — zero-dependency observability leaf. *)
  | Tooling  (** test/, bench/, lib/analysis — outside the kernel. *)

type trust = Trusted | Safe

val category_name : category -> string

type library = {
  lib_name : string;  (** dune library name, e.g. ["tock_hw"]. *)
  lib_dir : string;  (** repo-relative source dir, e.g. ["lib/hw"]. *)
  lib_root_module : string;  (** wrapped root module, e.g. ["Tock_hw"]. *)
  lib_category : category;
}

val libraries : library list

val library_by_name : string -> library option

val library_by_root_module : string -> library option

val library_of_path : string -> library option
(** Library owning a repo-relative source path, if any. *)

val categorize : string -> category option
(** Category of a repo-relative source path ([None] for paths outside
    the taxonomy, e.g. the project root). *)

val safe_core_modules : string list
(** Basenames (without extension) of lib/core modules that are safe
    library code rather than trusted kernel machinery. *)

val module_base : string -> string
(** ["lib/core/cells.mli"] -> ["cells"]. *)

val trust_of_path : string -> trust

val kernel_dirs : string list
(** The kernel-proper directories measured by the Fig. 5 analogue. *)

val scan_dirs : string list
(** Every directory the linter walks (kernel dirs plus tooling). *)

val shard_entry_files : string list
(** Files whose toplevel bindings are the fleet's per-domain shard
    entry points; the domain-safety analysis computes reachability
    from every binding in these files. *)

val check_rule_ids : string list
(** Rule ids otock-check can emit ([domain-safety], [allow-escape],
    [check-parse]); disjoint from {!Rules.all_rule_ids}. *)

val allowed_lib_deps : category -> string list
(** Layering matrix: otock libraries a stanza of the given category may
    list in its dune [libraries] field. *)

val userland_core_allowed : string list
(** Core-kernel submodules userland code may reference (the syscall ABI
    surface). *)

val starts_with : string -> string -> bool
(** [starts_with prefix s]. *)
