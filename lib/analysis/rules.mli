(** The architecture-conformance rule set (see DESIGN.md, "Trust
    taxonomy and architecture lint"). Rules are pure functions over the
    {!Dep_graph}; suppression pragmas from source comments are applied
    before results are returned. *)

type violation = {
  v_rule : string;
  v_file : string;
  v_line : int;
  v_message : string;
}

type result = {
  violations : violation list;  (** Not suppressed by any pragma. *)
  suppressed : (violation * Extract.pragma) list;
      (** Allowlisted in-source, with the justifying pragma. *)
}

val all_rule_ids : string list

val run : Source.file list -> result

val suppress :
  pragmas_for:(string -> Extract.pragma list) ->
  violation list ->
  violation list * (violation * Extract.pragma) list
(** Partition violations by the shared pragma-matching rule
    ([allow] covers its own line and the next, [allow-file] the whole
    file, rule id ["*"] every rule). Used by both the syntactic linter
    and otock-check so one grammar governs both tools. *)
