(* Domain-safety (race) analysis: module-toplevel mutable state
   reachable from the fleet's per-domain shard entry points.

   [Fleet.run] spawns one [Domain] per shard and every shard drives
   boards through the same library code. A [ref]/[Hashtbl]/[Buffer]/
   mutable-record global touched on that path is shared across domains
   with no happens-before edge — the OCaml-5 analogue of the `static
   mut` Tock forbids in capsules. [Atomic]/[Mutex] globals are
   synchronized by construction; [Bytes]/[Array] globals with no
   in-place mutation witness anywhere are read-only tables (crypto
   S-boxes, round constants) and equally safe.

   Reachability is interprocedural but name-based: every module-toplevel
   binding is a graph vertex, every resolved value reference an edge,
   and the entry set is all bindings of the shard entry files
   ({!Taxonomy.shard_entry_files}). Resolution understands wrapped-
   library roots ([Tock_core.Subslice.count]), siblings inside one
   library ([Subslice.count] from lib/core), file-local and
   nested-module bindings, and [open]s. *)

type finding = { f_file : string; f_line : int; f_message : string }

type vertex = {
  vx_file : string;
  vx_name : string;  (** dotted for nested-module bindings *)
  vx_line : int;
}

let dotted = String.concat "."

let last_component name =
  match List.rev (String.split_on_char '.' name) with
  | x :: _ -> x
  | [] -> name

(* --- vertex universe -------------------------------------------------- *)

let build_universe (summaries : Ast_extract.t list) =
  let vertices = ref [] in
  let n = ref 0 in
  let by_key : (string, int) Hashtbl.t = Hashtbl.create 512 in
  (* key -> vertex; first registration wins so shadowing stays
     deterministic (summaries arrive path-sorted) *)
  let register key idx =
    if not (Hashtbl.mem by_key key) then Hashtbl.add by_key key idx
  in
  List.iter
    (fun (a : Ast_extract.t) ->
      let modname = Dep_graph.module_name_of_path a.Ast_extract.a_path in
      let lib = Taxonomy.library_of_path a.Ast_extract.a_path in
      List.iter
        (fun (b : Ast_extract.binding) ->
          let idx = !n in
          incr n;
          vertices :=
            {
              vx_file = a.Ast_extract.a_path;
              vx_name = b.Ast_extract.b_name;
              vx_line = b.Ast_extract.b_line;
            }
            :: !vertices;
          let qualified = modname ^ "." ^ b.Ast_extract.b_name in
          register (a.Ast_extract.a_path ^ ":" ^ b.Ast_extract.b_name) idx;
          register qualified idx;
          (match lib with
          | Some l ->
              register (l.Taxonomy.lib_root_module ^ "." ^ qualified) idx
          | None -> ()))
        a.Ast_extract.a_bindings)
    summaries;
  (Array.of_list (List.rev !vertices), by_key)

(* --- reference resolution --------------------------------------------- *)

let resolve ~by_key ~(file : Ast_extract.t) (r : Ast_extract.value_ref) =
  let path = r.Ast_extract.r_path in
  let name = dotted path in
  let local key = Hashtbl.find_opt by_key (file.Ast_extract.a_path ^ ":" ^ key) in
  let try_all candidates =
    List.fold_left
      (fun acc k -> match acc with Some _ -> acc | None -> Hashtbl.find_opt by_key k)
      None candidates
  in
  match local name with
  | Some i -> Some i
  | None -> (
      (* nested-module sibling: inside [module M] a bare ref [x] is the
         binding registered as "M.x"; cheap suffix probe *)
      match
        try_all
          (name
          :: List.map
               (fun o -> dotted o ^ "." ^ name)
               file.Ast_extract.a_opens)
      with
      | Some i -> Some i
      | None ->
          if List.length path = 1 then
            (* last resort: a bare name defined under a nested module of
               the same file *)
            Hashtbl.fold
              (fun k i acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    if
                      Taxonomy.starts_with (file.Ast_extract.a_path ^ ":") k
                      && last_component k = name
                    then Some i
                    else None)
              by_key None
          else None)

(* --- analysis --------------------------------------------------------- *)

let analyze ?(entry_files = Taxonomy.shard_entry_files)
    (summaries : Ast_extract.t list) =
  let summaries =
    List.sort
      (fun (a : Ast_extract.t) b ->
        compare a.Ast_extract.a_path b.Ast_extract.a_path)
      summaries
  in
  let vertices, by_key = build_universe summaries in
  let g = Dep_graph.Digraph.make (Array.length vertices) in
  (* first referencing site per vertex, for the finding message *)
  let ref_site = Array.make (Array.length vertices) None in
  let note_site target ~src_file ~line =
    match ref_site.(target) with
    | Some (f, l) when (f, l) <= (src_file, line) -> ()
    | _ -> ref_site.(target) <- Some (src_file, line)
  in
  List.iter
    (fun (a : Ast_extract.t) ->
      List.iter
        (fun (b : Ast_extract.binding) ->
          match
            Hashtbl.find_opt by_key
              (a.Ast_extract.a_path ^ ":" ^ b.Ast_extract.b_name)
          with
          | None -> ()
          | Some src ->
              List.iter
                (fun (r : Ast_extract.value_ref) ->
                  match resolve ~by_key ~file:a r with
                  | Some dst when dst <> src ->
                      Dep_graph.Digraph.add_edge g src dst;
                      note_site dst ~src_file:a.Ast_extract.a_path
                        ~line:r.Ast_extract.r_line
                  | _ -> ())
                b.Ast_extract.b_refs)
        a.Ast_extract.a_bindings)
    summaries;
  let entries =
    List.concat_map
      (fun (a : Ast_extract.t) ->
        if List.mem a.Ast_extract.a_path entry_files then
          List.filter_map
            (fun (b : Ast_extract.binding) ->
              Hashtbl.find_opt by_key
                (a.Ast_extract.a_path ^ ":" ^ b.Ast_extract.b_name))
            a.Ast_extract.a_bindings
        else [])
      summaries
  in
  let reach = Dep_graph.Digraph.reachable g entries in
  (* mutation witnesses, resolved once across the whole tree *)
  let witnessed = Hashtbl.create 64 in
  List.iter
    (fun (a : Ast_extract.t) ->
      List.iter
        (fun (w : Ast_extract.value_ref) ->
          match resolve ~by_key ~file:a w with
          | Some i -> Hashtbl.replace witnessed i ()
          | None -> ())
        a.Ast_extract.a_witnesses)
    summaries;
  let findings = ref [] in
  List.iter
    (fun (a : Ast_extract.t) ->
      List.iter
        (fun (gl : Ast_extract.global) ->
          if not (Ast_extract.kind_is_synchronized gl.Ast_extract.g_kind) then
            match
              Hashtbl.find_opt by_key
                (a.Ast_extract.a_path ^ ":" ^ gl.Ast_extract.g_name)
            with
            | Some i when reach.(i) ->
                let needs_witness =
                  match gl.Ast_extract.g_kind with
                  | Ast_extract.Byte_buffer | Ast_extract.Array_buffer ->
                      not (Hashtbl.mem witnessed i)
                  | _ -> false
                in
                if not needs_witness then
                  let via =
                    match ref_site.(i) with
                    | Some (f, l) -> Printf.sprintf " (reached via %s:%d)" f l
                    | None -> ""
                  in
                  findings :=
                    {
                      f_file = a.Ast_extract.a_path;
                      f_line = gl.Ast_extract.g_line;
                      f_message =
                        Printf.sprintf
                          "module-toplevel %s `%s` is reachable from fleet \
                           shard entry points and shared across domains \
                           without Atomic/Mutex%s"
                          (Ast_extract.kind_name gl.Ast_extract.g_kind)
                          gl.Ast_extract.g_name via;
                    }
                    :: !findings
            | _ -> ())
        a.Ast_extract.a_globals)
    summaries;
  List.sort
    (fun a b -> compare (a.f_file, a.f_line) (b.f_file, b.f_line))
    !findings
