(** Domain-safety (race) analysis: flags module-toplevel mutable state
    reachable from the fleet's per-domain shard entry points without
    Atomic/Mutex mediation — the OCaml-5 analogue of the [static mut]
    Tock forbids in capsules.

    Reachability is interprocedural over {!Ast_extract} summaries:
    bindings are vertices, resolved value references are edges
    ({!Dep_graph.Digraph}), and the entry set is every binding of
    [entry_files]. [Bytes]/[Array] globals with no in-place mutation
    witness anywhere in the tree are read-only tables and not flagged. *)

type finding = { f_file : string; f_line : int; f_message : string }

val analyze : ?entry_files:string list -> Ast_extract.t list -> finding list
(** [entry_files] defaults to {!Taxonomy.shard_entry_files}. Findings
    are sorted by (file, line). *)
