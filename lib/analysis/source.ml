(* File discovery for the analyzer: walk the taxonomy's directories,
   load every .ml/.mli/dune file, and keep repo-relative paths so rule
   output is stable regardless of where the tool runs (dune executes
   tests and benches from inside _build). *)

type kind = Ml | Mli | Dune

type file = { path : string; kind : kind; content : string }

let kind_of_name name =
  if name = "dune" then Some Dune
  else if Filename.check_suffix name ".mli" then Some Mli
  else if Filename.check_suffix name ".ml" then Some Ml
  else None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let count_lines content =
  let n = ref (if String.length content = 0 then 0 else 1) in
  String.iter (fun c -> if c = '\n' then incr n) content;
  (* A trailing newline does not start a new line. *)
  if String.length content > 0 && content.[String.length content - 1] = '\n'
  then decr n;
  !n

(* dune executes tests/benches inside _build; walk up until the source
   tree is visible. Also accepts being run from the repo root. *)
let find_root () =
  let rec up d n =
    if n > 6 then None
    else if
      Sys.file_exists (Filename.concat d "lib/core")
      && Sys.file_exists (Filename.concat d "dune-project")
    then Some d
    else up (Filename.concat d "..") (n + 1)
  in
  up "." 0

let scan_dir ~root rel =
  let dir = Filename.concat root rel in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun name ->
           match kind_of_name name with
           | None -> None
           | Some kind ->
               let path = rel ^ "/" ^ name in
               Some { path; kind; content = read_file (Filename.concat dir name) })

let scan ~root = List.concat_map (scan_dir ~root) Taxonomy.scan_dirs

let file ~path ~content =
  let kind =
    match kind_of_name (Filename.basename path) with
    | Some k -> k
    | None -> Ml
  in
  { path; kind; content }
