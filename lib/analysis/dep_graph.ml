(* Module-reference graph: resolves the syntactic references Extract
   found into edges between source files and otock libraries.

   Resolution handles the three ways a foreign module gets named in this
   tree: fully qualified (`Tock_hw.Uart.write`), as a sibling inside the
   same wrapped library (`Uart_mux.attach` from another capsule), and
   through an `open` (`open Tock` then `Kernel.schedule_upcall`).
   Anything that resolves to no otock library (stdlib, fmt, ...) carries
   no architectural meaning and produces no edge. *)

type edge = {
  edge_line : int;
  edge_lib : Taxonomy.library;  (* target *)
  edge_submodule : string option;
  edge_member : string option;
  edge_via_open : bool;
}

type node = {
  node_path : string;
  node_lib : Taxonomy.library option;  (* owning library, if under lib/ *)
  node_category : Taxonomy.category option;
  node_extract : Extract.t;
  node_edges : edge list;
}

type dune_stanza = {
  dune_path : string;  (* repo-relative path of the dune file *)
  dune_dir : string;
  stanza : Extract.stanza;
}

type t = {
  nodes : node list;
  stanzas : dune_stanza list;
  mli_paths : string list;
}

let module_name_of_path path =
  String.capitalize_ascii (Taxonomy.module_base path)

(* library name -> module names defined by its sources *)
let submodule_table files =
  List.filter_map
    (fun (f : Source.file) ->
      match f.Source.kind with
      | Source.Dune -> None
      | _ ->
          Option.map
            (fun (l : Taxonomy.library) ->
              (l.Taxonomy.lib_name, module_name_of_path f.Source.path))
            (Taxonomy.library_of_path f.Source.path))
    files

let resolve ~table ~own_lib ~(opens : Extract.open_decl list) mods member line =
  let root = List.hd mods in
  let sub_of rest = match rest with [] -> None | s :: _ -> Some s in
  match Taxonomy.library_by_root_module root with
  | Some lib ->
      Some
        {
          edge_line = line;
          edge_lib = lib;
          edge_submodule = sub_of (List.tl mods);
          edge_member = member;
          edge_via_open = false;
        }
  | None -> (
      let in_lib lib_name = List.mem (lib_name, root) table in
      match own_lib with
      | Some (l : Taxonomy.library) when in_lib l.Taxonomy.lib_name ->
          (* Sibling module inside the same wrapped library. *)
          Some
            {
              edge_line = line;
              edge_lib = l;
              edge_submodule = Some root;
              edge_member = member;
              edge_via_open = false;
            }
      | _ ->
          List.find_map
            (fun (o : Extract.open_decl) ->
              match o.Extract.open_modules with
              | [ om ] -> (
                  match Taxonomy.library_by_root_module om with
                  | Some lib when in_lib lib.Taxonomy.lib_name ->
                      Some
                        {
                          edge_line = line;
                          edge_lib = lib;
                          edge_submodule = Some root;
                          edge_member = member;
                          edge_via_open = true;
                        }
                  | _ -> None)
              | _ -> None)
            opens)

let edges_of_file ~table (f : Source.file) (ex : Extract.t) =
  let own_lib = Taxonomy.library_of_path f.Source.path in
  let opens = ex.Extract.opens in
  let of_ref (r : Extract.reference) =
    resolve ~table ~own_lib ~opens r.Extract.ref_modules r.Extract.ref_member
      r.Extract.ref_line
  in
  (* `open Tock_hw` (or `open Tock_hw.Uart`) is itself an edge. A
     scoped `let open M in` is not: its references are still resolved
     through it above, but the expression-local import is not the file
     declaring a wholesale dependency (the userland wholesale-open rule
     keys on exactly this distinction). *)
  let of_open (o : Extract.open_decl) =
    if o.Extract.open_scoped then None
    else
    match o.Extract.open_modules with
    | root :: rest -> (
        match Taxonomy.library_by_root_module root with
        | Some lib ->
            Some
              {
                edge_line = o.Extract.open_line;
                edge_lib = lib;
                edge_submodule = (match rest with [] -> None | s :: _ -> Some s);
                edge_member = None;
                edge_via_open = true;
              }
        | None -> None)
    | [] -> None
  in
  List.filter_map of_ref ex.Extract.refs
  @ List.filter_map of_open ex.Extract.opens

let build (files : Source.file list) =
  let table = submodule_table files in
  let nodes =
    List.filter_map
      (fun (f : Source.file) ->
        match f.Source.kind with
        | Source.Dune -> None
        | _ ->
            let ex = Extract.of_ml f.Source.content in
            Some
              {
                node_path = f.Source.path;
                node_lib = Taxonomy.library_of_path f.Source.path;
                node_category = Taxonomy.categorize f.Source.path;
                node_extract = ex;
                node_edges = edges_of_file ~table f ex;
              })
      files
  in
  let stanzas =
    List.concat_map
      (fun (f : Source.file) ->
        match f.Source.kind with
        | Source.Dune ->
            Extract.dune_stanzas f.Source.content
            |> List.map (fun s ->
                   {
                     dune_path = f.Source.path;
                     dune_dir = Filename.dirname f.Source.path;
                     stanza = s;
                   })
        | _ -> [])
      files
  in
  let mli_paths =
    List.filter_map
      (fun (f : Source.file) ->
        if f.Source.kind = Source.Mli then Some f.Source.path else None)
      files
  in
  { nodes; stanzas; mli_paths }

let nodes_in_dir t dir =
  List.filter
    (fun n -> Taxonomy.starts_with (dir ^ "/") n.node_path)
    t.nodes

(* --- generic digraph -------------------------------------------------- *)

(* Small deterministic directed-graph kernel shared by the dataflow
   analyses (Domain_safety's binding-reachability worklist) and
   testable in isolation: results depend only on the edge *set*, never
   on insertion order. *)
module Digraph = struct
  type g = { size : int; mutable adj : int list array }

  let make size =
    if size < 0 then invalid_arg "Digraph.make: negative size";
    { size; adj = Array.make size [] }

  let check g v name =
    if v < 0 || v >= g.size then invalid_arg ("Digraph." ^ name ^ ": vertex out of range")

  let add_edge g u v =
    check g u "add_edge";
    check g v "add_edge";
    if not (List.mem v g.adj.(u)) then g.adj.(u) <- v :: g.adj.(u)

  let succs g u =
    check g u "succs";
    List.sort_uniq compare g.adj.(u)

  let size g = g.size

  (* BFS from the root set; output is insertion-order independent. *)
  let reachable g roots =
    let seen = Array.make (max 1 g.size) false in
    let q = Queue.create () in
    List.iter
      (fun r ->
        check g r "reachable";
        if not seen.(r) then begin
          seen.(r) <- true;
          Queue.add r q
        end)
      (List.sort_uniq compare roots);
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            Queue.add v q
          end)
        (succs g u)
    done;
    if g.size = 0 then [||] else seen

  (* Kahn's algorithm picking the smallest ready vertex first, so the
     order is canonical for a given edge set. None iff the graph has a
     directed cycle. *)
  let topo_sort g =
    let indeg = Array.make (max 1 g.size) 0 in
    for u = 0 to g.size - 1 do
      List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) (succs g u)
    done;
    let module IS = Set.Make (Int) in
    let ready = ref IS.empty in
    for v = 0 to g.size - 1 do
      if indeg.(v) = 0 then ready := IS.add v !ready
    done;
    let out = ref [] in
    let n = ref 0 in
    while not (IS.is_empty !ready) do
      let v = IS.min_elt !ready in
      ready := IS.remove v !ready;
      out := v :: !out;
      incr n;
      List.iter
        (fun w ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then ready := IS.add w !ready)
        (succs g v)
    done;
    if !n = g.size then Some (List.rev !out) else None

  let has_cycle g = topo_sort g = None
end
