(* Module-reference graph: resolves the syntactic references Extract
   found into edges between source files and otock libraries.

   Resolution handles the three ways a foreign module gets named in this
   tree: fully qualified (`Tock_hw.Uart.write`), as a sibling inside the
   same wrapped library (`Uart_mux.attach` from another capsule), and
   through an `open` (`open Tock` then `Kernel.schedule_upcall`).
   Anything that resolves to no otock library (stdlib, fmt, ...) carries
   no architectural meaning and produces no edge. *)

type edge = {
  edge_line : int;
  edge_lib : Taxonomy.library;  (* target *)
  edge_submodule : string option;
  edge_member : string option;
  edge_via_open : bool;
}

type node = {
  node_path : string;
  node_lib : Taxonomy.library option;  (* owning library, if under lib/ *)
  node_category : Taxonomy.category option;
  node_extract : Extract.t;
  node_edges : edge list;
}

type dune_stanza = {
  dune_path : string;  (* repo-relative path of the dune file *)
  dune_dir : string;
  stanza : Extract.stanza;
}

type t = {
  nodes : node list;
  stanzas : dune_stanza list;
  mli_paths : string list;
}

let module_name_of_path path =
  String.capitalize_ascii (Taxonomy.module_base path)

(* library name -> module names defined by its sources *)
let submodule_table files =
  List.filter_map
    (fun (f : Source.file) ->
      match f.Source.kind with
      | Source.Dune -> None
      | _ ->
          Option.map
            (fun (l : Taxonomy.library) ->
              (l.Taxonomy.lib_name, module_name_of_path f.Source.path))
            (Taxonomy.library_of_path f.Source.path))
    files

let resolve ~table ~own_lib ~(opens : Extract.open_decl list) mods member line =
  let root = List.hd mods in
  let sub_of rest = match rest with [] -> None | s :: _ -> Some s in
  match Taxonomy.library_by_root_module root with
  | Some lib ->
      Some
        {
          edge_line = line;
          edge_lib = lib;
          edge_submodule = sub_of (List.tl mods);
          edge_member = member;
          edge_via_open = false;
        }
  | None -> (
      let in_lib lib_name = List.mem (lib_name, root) table in
      match own_lib with
      | Some (l : Taxonomy.library) when in_lib l.Taxonomy.lib_name ->
          (* Sibling module inside the same wrapped library. *)
          Some
            {
              edge_line = line;
              edge_lib = l;
              edge_submodule = Some root;
              edge_member = member;
              edge_via_open = false;
            }
      | _ ->
          List.find_map
            (fun (o : Extract.open_decl) ->
              match o.Extract.open_modules with
              | [ om ] -> (
                  match Taxonomy.library_by_root_module om with
                  | Some lib when in_lib lib.Taxonomy.lib_name ->
                      Some
                        {
                          edge_line = line;
                          edge_lib = lib;
                          edge_submodule = Some root;
                          edge_member = member;
                          edge_via_open = true;
                        }
                  | _ -> None)
              | _ -> None)
            opens)

let edges_of_file ~table (f : Source.file) (ex : Extract.t) =
  let own_lib = Taxonomy.library_of_path f.Source.path in
  let opens = ex.Extract.opens in
  let of_ref (r : Extract.reference) =
    resolve ~table ~own_lib ~opens r.Extract.ref_modules r.Extract.ref_member
      r.Extract.ref_line
  in
  (* `open Tock_hw` (or `open Tock_hw.Uart`) is itself an edge. *)
  let of_open (o : Extract.open_decl) =
    match o.Extract.open_modules with
    | root :: rest -> (
        match Taxonomy.library_by_root_module root with
        | Some lib ->
            Some
              {
                edge_line = o.Extract.open_line;
                edge_lib = lib;
                edge_submodule = (match rest with [] -> None | s :: _ -> Some s);
                edge_member = None;
                edge_via_open = true;
              }
        | None -> None)
    | [] -> None
  in
  List.filter_map of_ref ex.Extract.refs
  @ List.filter_map of_open ex.Extract.opens

let build (files : Source.file list) =
  let table = submodule_table files in
  let nodes =
    List.filter_map
      (fun (f : Source.file) ->
        match f.Source.kind with
        | Source.Dune -> None
        | _ ->
            let ex = Extract.of_ml f.Source.content in
            Some
              {
                node_path = f.Source.path;
                node_lib = Taxonomy.library_of_path f.Source.path;
                node_category = Taxonomy.categorize f.Source.path;
                node_extract = ex;
                node_edges = edges_of_file ~table f ex;
              })
      files
  in
  let stanzas =
    List.concat_map
      (fun (f : Source.file) ->
        match f.Source.kind with
        | Source.Dune ->
            Extract.dune_stanzas f.Source.content
            |> List.map (fun s ->
                   {
                     dune_path = f.Source.path;
                     dune_dir = Filename.dirname f.Source.path;
                     stanza = s;
                   })
        | _ -> [])
      files
  in
  let mli_paths =
    List.filter_map
      (fun (f : Source.file) ->
        if f.Source.kind = Source.Mli then Some f.Source.path else None)
      files
  in
  { nodes; stanzas; mli_paths }

let nodes_in_dir t dir =
  List.filter
    (fun n -> Taxonomy.starts_with (dir ^ "/") n.node_path)
    t.nodes
