(* Reporting and the ratchet baseline.

   The baseline file grandfathers pre-existing violations as (rule,
   file, count) triples in a diff-friendly line format. The gate fails
   only when a (rule, file) key *exceeds* its baselined count — new
   violations — and separately reports keys that dropped below it, so
   the baseline can be ratcheted down (`otock_lint --write-baseline`)
   but never silently up. *)

type entry = { b_rule : string; b_file : string; b_count : int }

type diff = {
  new_violations : Rules.violation list;
      (* all sites of any (rule,file) key whose count exceeds baseline *)
  grandfathered : int;
  stale : entry list;  (* baselined count no longer reached: ratchet down *)
}

(* --- (rule, file) aggregation --------------------------------------- *)

let key_counts (violations : Rules.violation list) =
  List.fold_left
    (fun acc (viol : Rules.violation) ->
      let k = (viol.Rules.v_rule, viol.Rules.v_file) in
      match List.assoc_opt k acc with
      | Some n -> (k, n + 1) :: List.remove_assoc k acc
      | None -> (k, 1) :: acc)
    [] violations
  |> List.sort compare

let of_violations violations =
  List.map
    (fun ((r, f), n) -> { b_rule = r; b_file = f; b_count = n })
    (key_counts violations)

let diff (baseline : entry list) (violations : Rules.violation list) =
  let counts = key_counts violations in
  let base_count r f =
    match
      List.find_opt (fun e -> e.b_rule = r && e.b_file = f) baseline
    with
    | Some e -> e.b_count
    | None -> 0
  in
  let new_violations =
    List.filter
      (fun (viol : Rules.violation) ->
        let k = (viol.Rules.v_rule, viol.Rules.v_file) in
        let c = List.assoc k counts in
        c > base_count viol.Rules.v_rule viol.Rules.v_file)
      violations
  in
  let grandfathered =
    List.fold_left
      (fun acc ((r, f), c) -> acc + min c (base_count r f))
      0 counts
  in
  let stale =
    List.filter_map
      (fun e ->
        let c =
          match List.assoc_opt (e.b_rule, e.b_file) counts with
          | Some c -> c
          | None -> 0
        in
        if c < e.b_count then
          Some { e with b_count = e.b_count - c } (* surplus *)
        else None)
      baseline
  in
  { new_violations; grandfathered; stale }

(* --- baseline file format ------------------------------------------- *)

let baseline_to_string entries =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# otock-lint baseline: grandfathered violations as `count rule file`.\n\
     # New violations fail the gate; regenerate with `otock_lint \
     --write-baseline`\n\
     # only when a line here has genuinely been fixed (ratchet down).\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %s\n" e.b_count e.b_rule e.b_file))
    (List.sort compare entries);
  Buffer.contents b

let baseline_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ count; rule; file ] -> (
               match int_of_string_opt count with
               | Some n when n > 0 ->
                   Some (Ok { b_rule = rule; b_file = file; b_count = n })
               | _ -> Some (Error ("bad baseline count: " ^ line)))
           | _ -> Some (Error ("bad baseline line: " ^ line)))
  |> List.fold_left
       (fun acc item ->
         match (acc, item) with
         | Error e, _ -> Error e
         | Ok _, Error e -> Error e
         | Ok es, Ok e -> Ok (es @ [ e ]))
       (Ok [])

(* --- human-readable report ------------------------------------------ *)

let text ?(tool = "otock-lint") ~(result : Rules.result) ~(d : diff) () =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if d.new_violations = [] then
    pf "%s: OK — no new architecture violations\n" tool
  else (
    pf "%s: %d NEW violation(s) (not covered by baseline)\n\n" tool
      (List.length d.new_violations);
    List.iter
      (fun (viol : Rules.violation) ->
        pf "  %s:%d [%s]\n    %s\n" viol.Rules.v_file viol.Rules.v_line
          viol.Rules.v_rule viol.Rules.v_message)
      d.new_violations);
  pf "\nsummary:\n";
  pf "  sites flagged:        %d\n" (List.length result.Rules.violations);
  pf "  grandfathered:        %d (in baseline)\n" d.grandfathered;
  pf "  allowlisted inline:   %d\n" (List.length result.Rules.suppressed);
  pf "  new:                  %d\n" (List.length d.new_violations);
  if result.Rules.suppressed <> [] then (
    pf "\nallowlisted (justified in source):\n";
    (* One line per (file, rule) with the site count; the full
       justification lives next to the code. *)
    let keys =
      List.sort_uniq compare
        (List.map
           (fun ((viol : Rules.violation), _) ->
             (viol.Rules.v_file, viol.Rules.v_rule))
           result.Rules.suppressed)
    in
    List.iter
      (fun (file, rule) ->
        let sites =
          List.filter
            (fun ((viol : Rules.violation), _) ->
              viol.Rules.v_file = file && viol.Rules.v_rule = rule)
            result.Rules.suppressed
        in
        let note =
          match sites with
          | (_, (p : Extract.pragma)) :: _ when p.Extract.pragma_note <> "" ->
              let n = p.Extract.pragma_note in
              let n =
                match String.index_opt n '\n' with
                | Some k -> String.sub n 0 k ^ " ..."
                | None -> n
              in
              " — " ^ n
          | _ -> ""
        in
        pf "  %-46s [%s] x%d%s\n" file rule (List.length sites) note)
      keys);
  if d.stale <> [] then (
    pf "\nbaseline is stale (violations fixed — ratchet it down):\n";
    List.iter
      (fun e -> pf "  -%d %s %s\n" e.b_count e.b_rule e.b_file)
      d.stale);
  Buffer.contents b

(* --- JSON ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let violation_json (viol : Rules.violation) =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"message\":\"%s\"}"
    (json_escape viol.Rules.v_rule)
    (json_escape viol.Rules.v_file)
    viol.Rules.v_line
    (json_escape viol.Rules.v_message)

let json ?(pass = "lint") ~(result : Rules.result) ~(d : diff) () =
  let arr l f = "[" ^ String.concat "," (List.map f l) ^ "]" in
  Printf.sprintf
    "{\"pass\":\"%s\",\"new\":%s,\"all\":%s,\"suppressed\":%s,\"summary\":{\"sites\":%d,\"grandfathered\":%d,\"allowlisted\":%d,\"new\":%d,\"stale\":%d}}\n"
    (json_escape pass)
    (arr d.new_violations violation_json)
    (arr result.Rules.violations violation_json)
    (arr result.Rules.suppressed (fun (viol, _) -> violation_json viol))
    (List.length result.Rules.violations)
    d.grandfathered
    (List.length result.Rules.suppressed)
    (List.length d.new_violations)
    (List.length d.stale)
