(* Single source of truth for the repository's trust taxonomy.

   Both the architecture linter (Rules) and the Fig. 5 LoC analogue
   (bench/loc_analysis.ml) classify source files through this module, so
   the paper's four categories — core kernel, chip adaptors/hw, capsules,
   userland/boards — and the trusted/"unsafe-analogue" split cannot
   drift apart between the gate and the measurement. *)

type category =
  | Core
  | Hw
  | Crypto
  | Tbf
  | Capsule
  | Userland
  | Board
  | Obs
  | Tooling

type trust = Trusted | Safe

let category_name = function
  | Core -> "core"
  | Hw -> "hw"
  | Crypto -> "crypto"
  | Tbf -> "tbf"
  | Capsule -> "capsule"
  | Userland -> "userland"
  | Board -> "board"
  | Obs -> "obs"
  | Tooling -> "tooling"

type library = {
  lib_name : string;
  lib_dir : string;
  lib_root_module : string;
  lib_category : category;
}

let libraries =
  [
    { lib_name = "tock"; lib_dir = "lib/core"; lib_root_module = "Tock";
      lib_category = Core };
    { lib_name = "tock_hw"; lib_dir = "lib/hw"; lib_root_module = "Tock_hw";
      lib_category = Hw };
    { lib_name = "tock_crypto"; lib_dir = "lib/crypto";
      lib_root_module = "Tock_crypto"; lib_category = Crypto };
    { lib_name = "tock_tbf"; lib_dir = "lib/tbf";
      lib_root_module = "Tock_tbf"; lib_category = Tbf };
    { lib_name = "tock_capsules"; lib_dir = "lib/capsules";
      lib_root_module = "Tock_capsules"; lib_category = Capsule };
    { lib_name = "tock_userland"; lib_dir = "lib/userland";
      lib_root_module = "Tock_userland"; lib_category = Userland };
    { lib_name = "tock_boards"; lib_dir = "lib/boards";
      lib_root_module = "Tock_boards"; lib_category = Board };
    { lib_name = "tock_fleet"; lib_dir = "lib/fleet";
      lib_root_module = "Tock_fleet"; lib_category = Board };
    { lib_name = "tock_obs"; lib_dir = "lib/obs";
      lib_root_module = "Tock_obs"; lib_category = Obs };
    { lib_name = "tock_analysis"; lib_dir = "lib/analysis";
      lib_root_module = "Tock_analysis"; lib_category = Tooling };
  ]

let library_by_name name =
  List.find_opt (fun l -> l.lib_name = name) libraries

let library_by_root_module m =
  List.find_opt (fun l -> l.lib_root_module = m) libraries

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let library_of_path path =
  List.find_opt (fun l -> starts_with (l.lib_dir ^ "/") path) libraries

let categorize path =
  match library_of_path path with
  | Some l -> Some l.lib_category
  | None ->
      if path = "bin/otock_lint.ml" then Some Tooling
        (* the lint driver itself: tooling, not a board *)
      else if starts_with "bin/" path then Some Board
      else if starts_with "examples/" path then Some Board
      else if starts_with "test/" path || starts_with "bench/" path then
        Some Tooling
      else None

(* Within lib/core, only the modules that touch raw memory, mint
   capabilities, or drive hardware are trusted; pure data structures
   (cells, subslice, ring buffer) are safe library code, as in Tock. *)
let safe_core_modules =
  [
    "cells"; "subslice"; "ring_buffer"; "error"; "syscall"; "driver";
    "hil"; "driver_num"; "univ"; "scheduler"; "deferred_call";
  ]

let module_base path =
  let base = Filename.basename path in
  match String.index_opt base '.' with
  | Some i -> String.sub base 0 i
  | None -> base

let trust_of_path path =
  match categorize path with
  | Some Hw -> Trusted
  | Some Core ->
      if List.mem (module_base path) safe_core_modules then Safe else Trusted
  | _ -> Safe

(* The directories both the linter and the Fig. 5 bench walk. *)
let kernel_dirs =
  [ "lib/hw"; "lib/core"; "lib/crypto"; "lib/tbf"; "lib/capsules";
    "lib/userland"; "lib/boards"; "lib/fleet"; "lib/obs" ]

let scan_dirs =
  kernel_dirs @ [ "lib/analysis"; "bin"; "examples"; "test"; "bench" ]

(* Where a fleet process enters library code: Fleet spawns one Domain
   per shard and each shard drives boards through these bindings. The
   domain-safety analysis computes reachability from here. *)
let shard_entry_files = [ "lib/fleet/fleet.ml" ]

(* Rule ids otock-check (the AST-level pass) can emit, disjoint from
   the syntactic linter's so one pragma never silences the other tool
   by accident. *)
let check_rule_ids = [ "domain-safety"; "allow-escape"; "check-parse" ]

(* Layering matrix (paper Fig. 2, §4.1): which otock library may depend
   on which at the dune `libraries` level. External libraries (fmt, logs,
   alcotest, ...) are unconstrained. *)
let allowed_lib_deps = function
  | Core -> [ "tock_hw"; "tock_tbf"; "tock_crypto"; "tock_obs" ]
  | Hw -> [ "tock_crypto"; "tock_obs" ]
  | Crypto -> []
  | Tbf -> [ "tock_crypto" ]
  (* Observability is a zero-dependency leaf: anyone may record into
     it, it depends on nobody. *)
  | Obs -> []
  (* Capsules program against the HIL/adaptor records in the core
     kernel only — never the chip layer itself. TBF parsing is
     data-only (app_loader, signature checker). *)
  | Capsule -> [ "tock"; "tock_tbf"; "tock_obs" ]
  (* Userland speaks the syscall ABI; it links the core kernel for the
     Syscall/Error types but nothing below it. *)
  | Userland -> [ "tock" ]
  (* Boards are trusted composition roots: they wire everything. *)
  | Board ->
      [ "tock"; "tock_hw"; "tock_crypto"; "tock_tbf"; "tock_capsules";
        "tock_userland"; "tock_boards"; "tock_fleet"; "tock_obs" ]
  | Tooling ->
      [ "tock"; "tock_hw"; "tock_crypto"; "tock_tbf"; "tock_capsules";
        "tock_userland"; "tock_boards"; "tock_fleet"; "tock_analysis";
        "tock_obs" ]

(* Core-kernel submodules userland may legitimately name: the syscall
   ABI surface, not the kernel's internals. *)
let userland_core_allowed =
  [ "Syscall"; "Error"; "Driver_num"; "Subslice" ]
