(** Report emission (text and JSON) and the ratcheted baseline: new
    violations fail, grandfathered ones are counted, fixed ones are
    flagged so the baseline only shrinks. *)

type entry = { b_rule : string; b_file : string; b_count : int }

type diff = {
  new_violations : Rules.violation list;
      (** Every site of a (rule, file) key whose current count exceeds
          its baselined count. *)
  grandfathered : int;
  stale : entry list;
      (** Baseline surplus per key: these were fixed; ratchet down. *)
}

val of_violations : Rules.violation list -> entry list

val diff : entry list -> Rules.violation list -> diff

val baseline_to_string : entry list -> string

val baseline_of_string : string -> (entry list, string) result

val text : ?tool:string -> result:Rules.result -> d:diff -> unit -> string
(** [tool] labels the report header (["otock-lint"] by default;
    otock-check passes its own name). *)

val json : ?pass:string -> result:Rules.result -> d:diff -> unit -> string
(** One stable schema for both tools:
    [{"pass", "new", "all", "suppressed", "summary"}], where [pass] is
    ["lint"] or ["check"]. *)
