(* Syntactic extraction from OCaml and dune sources.

   This is a lexer, not a parser: it strips comments/strings with correct
   line accounting and records (a) dotted module paths, (b) `open` /
   `include` declarations, (c) attributes (for warning-suppression
   scanning), and (d) `otock-lint:` allowlist pragmas found inside
   comments. That is enough signal for architecture linting without
   depending on compiler-libs. *)

type reference = {
  ref_modules : string list;  (* uppercase components, outermost first *)
  ref_member : string option; (* trailing lowercase member, if any *)
  ref_line : int;
}

type open_decl = {
  open_modules : string list;
  open_line : int;
  open_scoped : bool;  (* `let open M in` — expression-scoped *)
}

type attribute = { attr_text : string; attr_line : int }

type pragma = {
  pragma_rule : string;
  pragma_file_level : bool;
  pragma_note : string;
  pragma_line : int;
}

type t = {
  refs : reference list;
  opens : open_decl list;
  attributes : attribute list;
  pragmas : pragma list;
}

let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c =
  is_upper c || is_lower c || (c >= '0' && c <= '9') || c = '\''

(* Parse `otock-lint: allow <rule> <note>` / `allow-file <rule> <note>`
   out of a comment body. *)
let pragmas_of_comment ~line text =
  let key = "otock-lint:" in
  let rec find i acc =
    if i + String.length key > String.length text then List.rev acc
    else if String.sub text i (String.length key) = key then (
      let rest =
        String.sub text
          (i + String.length key)
          (String.length text - i - String.length key)
      in
      let rest = String.trim rest in
      let word s =
        match String.index_opt s ' ' with
        | Some j -> (String.sub s 0 j, String.trim (String.sub s j (String.length s - j)))
        | None -> (s, "")
      in
      let verb, rest = word rest in
      let p =
        match verb with
        | "allow" | "allow-file" ->
            let rule, note = word rest in
            (* Writers naturally separate rule from justification with a
               dash; drop it from the note. *)
            let note =
              let drop p s =
                if Taxonomy.starts_with p s then
                  String.trim
                    (String.sub s (String.length p)
                       (String.length s - String.length p))
                else s
              in
              drop "\xe2\x80\x94" (drop "--" (drop "- " note))
            in
            if rule = "" then None
            else
              Some
                {
                  pragma_rule = rule;
                  pragma_file_level = verb = "allow-file";
                  pragma_note = note;
                  pragma_line = line;
                }
        | _ -> None
      in
      find (i + String.length key) (match p with Some p -> p :: acc | None -> acc))
    else find (i + 1) acc
  in
  find 0 []

let of_ml content =
  let n = String.length content in
  let refs = ref [] in
  let opens = ref [] in
  let attrs = ref [] in
  let prags = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let cur () = content.[!i] in
  let bump () =
    if cur () = '\n' then incr line;
    incr i
  in
  (* Consume a string literal starting at the opening quote. *)
  let skip_string () =
    bump ();
    let fin = ref false in
    while (not !fin) && !i < n do
      match cur () with
      | '\\' ->
          bump ();
          if !i < n then bump ()
      | '"' ->
          bump ();
          fin := true
      | _ -> bump ()
    done
  in
  (* {id|...|id} quoted string; [i] is on '{'. Returns false if this is
     not actually a quoted-string opener. *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while !j < n && (is_lower content.[!j] || content.[!j] = '_') do incr j done;
    if !j < n && content.[!j] = '|' then (
      let id = String.sub content (!i + 1) (!j - !i - 1) in
      let close = "|" ^ id ^ "}" in
      let cl = String.length close in
      (* Step past the opening brace-id-pipe before searching for the
         closer: scanning from the brace made a quoted string whose body
         starts with a closing brace terminate one character early (the
         opener's pipe plus that brace look like the closer), leaking
         string bytes into the token stream. *)
      for _ = 1 to String.length id + 2 do bump () done;
      let fin = ref false in
      while not !fin do
        if !i + cl > n then (
          i := n;
          fin := true)
        else if String.sub content !i cl = close then (
          for _ = 1 to cl do bump () done;
          fin := true)
        else bump ()
      done;
      true)
    else false
  in
  (* Comment starting at "(*": nested, newline-aware; body is scanned
     for pragmas. *)
  let skip_comment () =
    let buf = Buffer.create 64 in
    let depth = ref 0 in
    let fin = ref false in
    while (not !fin) && !i < n do
      if !i + 1 < n && cur () = '(' && content.[!i + 1] = '*' then (
        incr depth;
        bump ();
        bump ())
      else if !i + 1 < n && cur () = '*' && content.[!i + 1] = ')' then (
        decr depth;
        bump ();
        bump ();
        if !depth = 0 then fin := true)
      else (
        Buffer.add_char buf (cur ());
        bump ())
    done;
    (* Anchor pragmas to the comment's closing line so a multi-line
       justification directly above the flagged code still covers it
       (a line pragma suppresses its own line and the next). *)
    prags := pragmas_of_comment ~line:!line (Buffer.contents buf) @ !prags
  in
  (* Attribute [@...]: capture bracketed text (strings handled). *)
  let skip_attribute () =
    let start_line = !line in
    let buf = Buffer.create 32 in
    let depth = ref 0 in
    let fin = ref false in
    while (not !fin) && !i < n do
      match cur () with
      | '[' ->
          incr depth;
          Buffer.add_char buf '[';
          bump ()
      | ']' ->
          decr depth;
          Buffer.add_char buf ']';
          bump ();
          if !depth = 0 then fin := true
      | '"' ->
          let s0 = !i in
          skip_string ();
          Buffer.add_string buf (String.sub content s0 (!i - s0))
      | _ ->
          Buffer.add_char buf (cur ());
          bump ()
    done;
    attrs := { attr_text = Buffer.contents buf; attr_line = start_line } :: !attrs
  in
  let read_ident () =
    let s = !i in
    while !i < n && is_ident_char (cur ()) do bump () done;
    String.sub content s (!i - s)
  in
  let skip_ws () =
    while
      !i < n && (cur () = ' ' || cur () = '\t' || cur () = '\n' || cur () = '\r')
    do
      bump ()
    done
  in
  (* Dotted module path starting at an uppercase ident. *)
  let read_module_path () =
    let l0 = !line in
    let rec loop mods =
      let id = read_ident () in
      let mods = mods @ [ id ] in
      if !i < n && cur () = '.' && !i + 1 < n && is_upper content.[!i + 1] then (
        bump ();
        loop mods)
      else if !i < n && cur () = '.' && !i + 1 < n && is_lower content.[!i + 1]
      then (
        bump ();
        let m = read_ident () in
        (mods, Some m, l0))
      else (mods, None, l0)
    in
    loop []
  in
  (* True when the last identifier read was `let`: distinguishes the
     expression-scoped `let open M in` from a structure-level `open M`.
     Whitespace and comments between `let` and `open` keep the flag;
     any other identifier clears it. *)
  let prev_let = ref false in
  while !i < n do
    let c = cur () in
    if !i + 1 < n && c = '(' && content.[!i + 1] = '*' then skip_comment ()
    else if c = '"' then skip_string ()
    else if c = '{' then if skip_quoted_string () then () else bump ()
    else if !i + 1 < n && c = '[' && content.[!i + 1] = '@' then skip_attribute ()
    else if c = '\'' then
      (* Char literal or type variable. *)
      if !i + 2 < n && content.[!i + 1] = '\\' then (
        (* escaped char literal: skip to closing quote *)
        bump ();
        bump ();
        while !i < n && cur () <> '\'' do bump () done;
        if !i < n then bump ())
      else if !i + 2 < n && content.[!i + 2] = '\'' then (
        bump ();
        bump ();
        bump ())
      else bump ()
    else if is_upper c then (
      prev_let := false;
      let mods, member, l0 = read_module_path () in
      if List.length mods > 1 || member <> None then
        refs := { ref_modules = mods; ref_member = member; ref_line = l0 } :: !refs)
    else if is_lower c then (
      let kw_line = !line in
      let kw = read_ident () in
      let was_let = !prev_let in
      prev_let := kw = "let";
      (match kw with
      | "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "prerr_string" | "prerr_endline" | "prerr_newline" ->
          (* Bare stdout/stderr writers: recorded as Stdlib references so
             rules can police raw console output. "Stdlib" names no otock
             library, so these never become dependency edges. *)
          refs :=
            { ref_modules = [ "Stdlib" ]; ref_member = Some kw;
              ref_line = kw_line }
            :: !refs
      | _ -> ());
      if kw = "open" || kw = "include" then (
        let j = !i in
        let saved_line = !line in
        skip_ws ();
        if !i < n && cur () = '!' then bump ();
        skip_ws ();
        if !i < n && is_upper (cur ()) then (
          let mods, _member, l0 = read_module_path () in
          opens :=
            {
              open_modules = mods;
              open_line = l0;
              open_scoped = was_let && kw = "open";
            }
            :: !opens)
        else (
          (* `include struct`, `open (val ...)`: rewind nothing, the
             main loop continues from here. *)
          i := j;
          line := saved_line)))
    else bump ()
  done;
  {
    refs = List.rev !refs;
    opens = List.rev !opens;
    attributes = List.rev !attrs;
    pragmas = List.rev !prags;
  }

(* --- dune files ------------------------------------------------------ *)

type sexp = Atom of string * int | List of sexp list * int

let sexps_of_dune content =
  let n = String.length content in
  let line = ref 1 in
  let i = ref 0 in
  let bump () =
    if content.[!i] = '\n' then incr line;
    incr i
  in
  let rec read_list acc =
    if !i >= n then List.rev acc
    else
      match content.[!i] with
      | ')' ->
          bump ();
          List.rev acc
      | '(' ->
          let l0 = !line in
          bump ();
          let inner = read_list [] in
          read_list (List (inner, l0) :: acc)
      | ';' ->
          while !i < n && content.[!i] <> '\n' do bump () done;
          read_list acc
      | ' ' | '\t' | '\n' | '\r' ->
          bump ();
          read_list acc
      | '"' ->
          let l0 = !line in
          bump ();
          let s = !i in
          while !i < n && content.[!i] <> '"' do
            if content.[!i] = '\\' then bump ();
            if !i < n then bump ()
          done;
          let a = String.sub content s (!i - s) in
          if !i < n then bump ();
          read_list (Atom (a, l0) :: acc)
      | _ ->
          let l0 = !line in
          let s = !i in
          while
            !i < n
            && not
                 (List.mem content.[!i] [ '('; ')'; ' '; '\t'; '\n'; '\r'; ';' ])
          do
            bump ()
          done;
          read_list (Atom (String.sub content s (!i - s), l0) :: acc)
  in
  read_list []

type stanza = {
  stanza_kind : string;  (* "library", "executable", "executables", "test" *)
  stanza_names : string list;
  stanza_libraries : (string * int) list;  (* dep, line *)
  stanza_line : int;
}

let dune_stanzas content =
  sexps_of_dune content
  |> List.filter_map (function
       | List (Atom (kind, _) :: fields, l0)
         when List.mem kind [ "library"; "executable"; "executables"; "test" ]
         ->
           let names = ref [] in
           let libs = ref [] in
           List.iter
             (function
               | List (Atom ("name", _) :: Atom (n, _) :: _, _) ->
                   names := !names @ [ n ]
               | List (Atom ("names", _) :: rest, _) ->
                   List.iter
                     (function Atom (n, _) -> names := !names @ [ n ] | _ -> ())
                     rest
               | List (Atom ("libraries", _) :: rest, _) ->
                   List.iter
                     (function
                       | Atom (n, l) -> libs := !libs @ [ (n, l) ]
                       | _ -> ())
                     rest
               | _ -> ())
             fields;
           Some
             {
               stanza_kind = kind;
               stanza_names = !names;
               stanza_libraries = !libs;
               stanza_line = l0;
             }
       | _ -> None)
