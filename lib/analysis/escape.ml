(* Allow-window escape analysis: the static counterpart of CHERI-style
   revocation on Subslice allow windows.

   [Kernel.with_allow_rw]/[with_allow_ro] lend a capsule a Subslice
   window that aliases process memory for exactly the closure's extent
   (kernel.mli: "closure-scoped access"); at unallow the range is
   revoked. A borrow that outlives the closure — stashed into a ref, a
   mutable field, a container, returned, or captured in a closure that
   is itself stored — is a use-after-unallow waiting for the process to
   re-allow or die. [Kernel.allow_window] is the sanctioned escape
   hatch for split-phase holds (it clones the window with independent
   narrowing), so the analysis points offenders at it; the one thing
   even a clone must not do is land in a module-toplevel global, where
   it would outlive the *board*, so that is flagged too.

   The analysis is syntactic but alias-aware inside the closure:
   [let x = w], [let x = Subslice.clone w] and Some/tuple wrappings of
   either taint [x] as well. *)

type finding = { f_file : string; f_line : int; f_message : string }

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let flatten (lid : Longident.t) = try Longident.flatten lid with _ -> []

let is_with_allow path =
  match List.rev path with
  | ("with_allow_rw" | "with_allow_ro" | "with_allow") :: rest -> (
      match rest with "Kernel" :: _ -> true | _ -> false)
  | _ -> false

let is_allow_window path =
  match List.rev path with
  | "allow_window" :: "Kernel" :: _ -> true
  | _ -> false

(* Container-store functions: an argument position that retains its
   value beyond the call. (The first argument is the container itself;
   a tainted *container* is not an escape, a tainted *stored value*
   is.) *)
let sink_fn path =
  match path with
  | [ ":=" ] -> Some "a ref"
  | _ -> (
      match List.rev path with
      | m :: rest -> (
          let modname = match rest with md :: _ -> md | [] -> "" in
          match (modname, m) with
          | "Hashtbl", ("add" | "replace") -> Some "a Hashtbl"
          | "Queue", ("add" | "push") -> Some "a Queue"
          | "Stack", "push" -> Some "a Stack"
          | "Array", "set" -> Some "an array"
          | "Take_cell", ("put" | "replace") -> Some "a Take_cell"
          | "Optional_cell", ("set" | "insert") -> Some "an Optional_cell"
          | _ -> None)
      | [] -> None)

(* Does [e] mention a tainted identifier anywhere? Used for store
   sinks, where any embedding (Some w, a closure over w, a record
   holding w) retains the window. *)
let mentions tainted (e : Parsetree.expression) =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { Location.txt = Longident.Lident x; _ }
            when List.mem x tainted ->
              found := true
          | _ -> ());
          if not !found then
            Ast_iterator.default_iterator.Ast_iterator.expr self e);
    }
  in
  iter.Ast_iterator.expr iter e;
  !found

(* Aliasing right-hand sides: expressions whose value *is* (a window
   over the same bytes as) a tainted window. *)
let rec aliases tainted (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Location.txt = Longident.Lident x; _ } ->
      List.mem x tainted
  | Parsetree.Pexp_apply (f, args) -> (
      match f.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident lid -> (
          match List.rev (flatten lid.Location.txt) with
          | ("clone" | "of_bytes" | "of_bytes_window") :: "Subslice" :: _ ->
              List.exists (fun (_, a) -> aliases tainted a) args
          | _ -> false)
      | _ -> false)
  | Parsetree.Pexp_constraint (e, _) -> aliases tainted e
  | Parsetree.Pexp_construct (_, Some arg) | Parsetree.Pexp_variant (_, Some arg)
    ->
      aliases tainted arg
  | Parsetree.Pexp_tuple es -> List.exists (aliases tainted) es
  | _ -> false

(* The value(s) an expression evaluates to, for return-position
   escapes. *)
let rec tail_exprs (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_let (_, _, body)
  | Parsetree.Pexp_sequence (_, body)
  | Parsetree.Pexp_open (_, body)
  | Parsetree.Pexp_letmodule (_, _, body)
  | Parsetree.Pexp_constraint (body, _) ->
      tail_exprs body
  | Parsetree.Pexp_ifthenelse (_, t, f) ->
      tail_exprs t @ (match f with Some f -> tail_exprs f | None -> [])
  | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_try (_, cases) ->
      List.concat_map
        (fun (c : Parsetree.case) -> tail_exprs c.Parsetree.pc_rhs)
        cases
  | _ -> [ e ]

(* Is a returned value the window (possibly wrapped in constructors,
   tuples, records, or a closure)? Function *results* other than
   Subslice.clone are window-free (Subslice.length w : int), so
   applications are not descended into. *)
let rec returns_window tainted (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { Location.txt = Longident.Lident x; _ } ->
      List.mem x tainted
  | Parsetree.Pexp_construct (_, Some a) | Parsetree.Pexp_variant (_, Some a) ->
      returns_window tainted a
  | Parsetree.Pexp_tuple es -> List.exists (returns_window tainted) es
  | Parsetree.Pexp_record (fields, base) ->
      List.exists (fun (_, v) -> returns_window tainted v) fields
      || (match base with Some b -> returns_window tainted b | None -> false)
  | Parsetree.Pexp_constraint (e, _) -> returns_window tainted e
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
      (* a returned closure keeps the window alive in its environment *)
      mentions tainted e
  | Parsetree.Pexp_apply (f, args) -> (
      match f.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident lid -> (
          match List.rev (flatten lid.Location.txt) with
          | "clone" :: "Subslice" :: _ ->
              List.exists (fun (_, a) -> returns_window tainted a) args
          | _ -> false)
      | _ -> false)
  | _ -> false

(* --- the closure scan ------------------------------------------------- *)

let scan_closure ~file ~findings ~context tainted body =
  let report line sink =
    findings :=
      {
        f_file = file;
        f_line = line;
        f_message =
          Printf.sprintf
            "allow-window borrow `%s` escapes its with_allow scope into %s: \
             the window aliases process memory and is revoked at unallow \
             (use Kernel.allow_window for split-phase holds, paper §3.3.2)"
            context sink;
      }
      :: !findings
  in
  let rec scan tainted (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_let (_, vbs, rest) ->
        List.iter
          (fun (vb : Parsetree.value_binding) -> scan tainted vb.Parsetree.pvb_expr)
          vbs;
        let tainted' =
          List.concat_map
            (fun (vb : Parsetree.value_binding) ->
              if aliases tainted vb.Parsetree.pvb_expr then
                List.map fst
                  (let rec vars (p : Parsetree.pattern) =
                     match p.Parsetree.ppat_desc with
                     | Parsetree.Ppat_var v -> [ (v.Location.txt, 0) ]
                     | Parsetree.Ppat_alias (q, v) ->
                         (v.Location.txt, 0) :: vars q
                     | Parsetree.Ppat_constraint (q, _) -> vars q
                     | Parsetree.Ppat_tuple ps -> List.concat_map vars ps
                     | Parsetree.Ppat_construct (_, Some (_, q)) -> vars q
                     | _ -> []
                   in
                   vars vb.Parsetree.pvb_pat)
              else [])
            vbs
          @ tainted
        in
        scan tainted' rest
    | Parsetree.Pexp_setfield (tgt, _, v) ->
        if mentions tainted v then
          report (line_of e.Parsetree.pexp_loc) "a mutable field";
        scan tainted tgt;
        scan tainted v
    | Parsetree.Pexp_apply (f, args) ->
        (match f.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident lid -> (
            let path = flatten lid.Location.txt in
            match sink_fn path with
            | Some what -> (
                (* value positions: everything after the container *)
                match args with
                | _container :: stored ->
                    if List.exists (fun (_, a) -> mentions tainted a) stored
                    then report (line_of e.Parsetree.pexp_loc) what
                | [] -> ())
            | None -> ())
        | _ -> ());
        scan tainted f;
        List.iter (fun (_, a) -> scan tainted a) args
    | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases) ->
        scan tainted scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            Option.iter (scan tainted) c.Parsetree.pc_guard;
            scan tainted c.Parsetree.pc_rhs)
          cases
    | Parsetree.Pexp_fun (_, default, _, fbody) ->
        Option.iter (scan tainted) default;
        scan tainted fbody
    | Parsetree.Pexp_function cases ->
        List.iter
          (fun (c : Parsetree.case) ->
            Option.iter (scan tainted) c.Parsetree.pc_guard;
            scan tainted c.Parsetree.pc_rhs)
          cases
    | Parsetree.Pexp_sequence (a, b) ->
        scan tainted a;
        scan tainted b
    | Parsetree.Pexp_ifthenelse (c, t, f) ->
        scan tainted c;
        scan tainted t;
        Option.iter (scan tainted) f
    | Parsetree.Pexp_constraint (e, _)
    | Parsetree.Pexp_coerce (e, _, _)
    | Parsetree.Pexp_open (_, e)
    | Parsetree.Pexp_lazy e
    | Parsetree.Pexp_assert e
    | Parsetree.Pexp_field (e, _) ->
        scan tainted e
    | Parsetree.Pexp_tuple es | Parsetree.Pexp_array es ->
        List.iter (scan tainted) es
    | Parsetree.Pexp_construct (_, a) | Parsetree.Pexp_variant (_, a) ->
        Option.iter (scan tainted) a
    | Parsetree.Pexp_record (fields, base) ->
        List.iter (fun (_, v) -> scan tainted v) fields;
        Option.iter (scan tainted) base
    | Parsetree.Pexp_while (c, b) ->
        scan tainted c;
        scan tainted b
    | Parsetree.Pexp_for (_, lo, hi, _, b) ->
        scan tainted lo;
        scan tainted hi;
        scan tainted b
    | _ -> ()
  in
  scan tainted body;
  (* return-position escapes: with_allow returns Ok (f w), so a closure
     evaluating to the window hands the caller a revoked alias *)
  List.iter
    (fun r ->
      if returns_window tainted r then
        report (line_of r.Parsetree.pexp_loc) "its own return value")
    (tail_exprs body)

(* --- allow_window clones stored in module globals --------------------- *)

(* A clone may be held in capsule instance state (that is its purpose),
   but a module-toplevel global outlives every board in a fleet
   process: a window stored there leaks process memory across
   board lifetimes and across domains. *)
let scan_global_stash ~file ~findings ~global_names st =
  (* Taint is scoped to the binding's actual extent — the case body of
     [match Kernel.allow_window ... with Some w -> ...] or the body of
     [let w = Kernel.allow_window ... in ...] — so a with_allow borrow
     elsewhere in the file that happens to reuse the name [w] is not
     dragged in. *)
  let is_allow_window_app (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, _) -> (
        match f.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident lid -> is_allow_window (flatten lid.Location.txt)
        | _ -> false)
    | _ -> false
  in
  let rec pat_vars (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var v -> [ v.Location.txt ]
    | Parsetree.Ppat_alias (q, v) -> v.Location.txt :: pat_vars q
    | Parsetree.Ppat_constraint (q, _) -> pat_vars q
    | Parsetree.Ppat_construct (_, Some (_, q)) -> pat_vars q
    | Parsetree.Ppat_tuple ps -> List.concat_map pat_vars ps
    | _ -> []
  in
  let report line g =
    findings :=
      {
        f_file = file;
        f_line = line;
        f_message =
          Printf.sprintf
            "allow_window clone stored into module-toplevel global `%s`: \
             the window would outlive the board and leak process memory \
             across the fleet"
            g;
      }
      :: !findings
  in
  (* flag `glob := <expr mentioning a tainted window>` inside [scope] *)
  let check_scope tainted scope =
    let iter =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self (e : Parsetree.expression) ->
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_apply
                ( {
                    Parsetree.pexp_desc =
                      Parsetree.Pexp_ident
                        { Location.txt = Longident.Lident ":="; _ };
                    _;
                  },
                  [
                    ( _,
                      {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_ident
                            { Location.txt = Longident.Lident g; _ };
                        _;
                      } );
                    (_, v);
                  ] )
              when List.mem g global_names && mentions tainted v ->
                report (line_of e.Parsetree.pexp_loc) g
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr self e);
      }
    in
    iter.Ast_iterator.expr iter scope
  in
  let outer =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_match (scrut, cases) when is_allow_window_app scrut
            ->
              List.iter
                (fun (c : Parsetree.case) ->
                  match pat_vars c.Parsetree.pc_lhs with
                  | [] -> ()
                  | tainted -> check_scope tainted c.Parsetree.pc_rhs)
                cases
          | Parsetree.Pexp_let (_, vbs, body) ->
              let tainted =
                List.concat_map
                  (fun (vb : Parsetree.value_binding) ->
                    if is_allow_window_app vb.Parsetree.pvb_expr then
                      pat_vars vb.Parsetree.pvb_pat
                    else [])
                  vbs
              in
              if tainted <> [] then check_scope tainted body
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr self e);
    }
  in
  outer.Ast_iterator.structure outer st

(* --- driver ----------------------------------------------------------- *)

let analyze ~path ~global_names (st : Parsetree.structure) =
  let findings = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self (e : Parsetree.expression) ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, args) -> (
              match f.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident lid
                when is_with_allow (flatten lid.Location.txt) -> (
                  (* the closure is the last unlabelled argument *)
                  let closure =
                    List.fold_left
                      (fun acc ((lbl, a) : Asttypes.arg_label * Parsetree.expression) ->
                        match lbl with Asttypes.Nolabel -> Some a | _ -> acc)
                      None args
                  in
                  match closure with
                  | Some
                      {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_fun (_, _, pat, body);
                        _;
                      } -> (
                      match pat.Parsetree.ppat_desc with
                      | Parsetree.Ppat_var v ->
                          scan_closure ~file:path ~findings
                            ~context:(v.Location.txt)
                            [ v.Location.txt ] body
                      | _ -> ())
                  | _ -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr self e);
    }
  in
  iter.Ast_iterator.structure iter st;
  scan_global_stash ~file:path ~findings ~global_names st;
  List.rev !findings
