(* Only the syscall-ABI surface of the core kernel — never internals. *)
module Error = Tock.Error
module Syscall = Tock.Syscall
module Driver_num = Tock.Driver_num

type result3 = (int * int * int, Error.t) result

let call_classic app ~driver ~sub ~cmd ~arg1 ~arg2 : result3 =
  let result = ref None in
  match Libtock.subscribe app ~driver ~sub (fun a b c -> result := Some (a, b, c)) with
  | Error e -> Error e
  | Ok () -> (
      match Libtock.command app ~driver ~cmd ~arg1 ~arg2 with
      | Syscall.Failure e
      | Syscall.Failure_u32 (e, _)
      | Syscall.Failure_u32_u32 (e, _, _) ->
          Libtock.unsubscribe app ~driver ~sub;
          Error e
      | _ ->
          while !result = None do
            Libtock.yield_wait app
          done;
          Libtock.unsubscribe app ~driver ~sub;
          (match !result with
          | Some r -> Ok r
          | None -> Error Error.FAIL))

type waitfor_handle = { h_app : Emu.app; h_driver : int; h_sub : int }

let waitfor_handle app ~driver ~sub =
  (* One-time dummy subscription so the capsule's completion is queued
     even though no callback will ever be invoked for it. *)
  ignore (Libtock.subscribe app ~driver ~sub (fun _ _ _ -> ()));
  { h_app = app; h_driver = driver; h_sub = sub }

let call_waitfor h ~cmd ~arg1 ~arg2 : result3 =
  match
    Libtock.command h.h_app ~driver:h.h_driver ~cmd ~arg1 ~arg2
  with
  | Syscall.Failure e
  | Syscall.Failure_u32 (e, _)
  | Syscall.Failure_u32_u32 (e, _, _) ->
      Error e
  | _ -> Ok (Libtock.yield_wait_for h.h_app ~driver:h.h_driver ~sub:h.h_sub)

let call_blocking app ~driver ~sub ~cmd ~arg1 ~arg2 : result3 =
  Libtock.command_blocking app ~driver ~cmd ~arg1 ~arg2 ~sub

let call_with_timeout app ~driver ~sub ~cmd ~arg1 ~arg2 ~timeout_ticks =
  let result = ref None and timed_out = ref false in
  (* two callbacks... *)
  ignore (Libtock.subscribe app ~driver ~sub (fun a b c -> result := Some (a, b, c)));
  ignore
    (Libtock.subscribe app ~driver:Driver_num.alarm ~sub:0 (fun _ _ _ ->
         timed_out := true));
  (* ...two commands... *)
  ignore (Libtock.command app ~driver:Driver_num.alarm ~cmd:5 ~arg1:timeout_ticks ~arg2:0);
  (match Libtock.command app ~driver ~cmd ~arg1 ~arg2 with
  | Syscall.Failure _ | Syscall.Failure_u32 _ | Syscall.Failure_u32_u32 _ ->
      result := None;
      timed_out := true
  | _ ->
      (* ...then wait for whichever fires first... *)
      while !result = None && not !timed_out do
        Libtock.yield_wait app
      done);
  (* ...and tear the loser down. *)
  if !result <> None then
    ignore (Libtock.command app ~driver:Driver_num.alarm ~cmd:6 ~arg1:0 ~arg2:0);
  Libtock.unsubscribe app ~driver ~sub;
  Libtock.unsubscribe app ~driver:Driver_num.alarm ~sub:0;
  !result

(* ---- typed services ---- *)

let expect_classic app ~driver ~sub ~cmd ~arg1 ~arg2 =
  match call_classic app ~driver ~sub ~cmd ~arg1 ~arg2 with
  | Ok r -> r
  | Error e ->
      raise (Emu.App_panic_exn (Printf.sprintf "driver %#x cmd %d failed: %s"
                                  driver cmd (Error.to_string e)))

let sleep_ticks app dt =
  ignore
    (expect_classic app ~driver:Driver_num.alarm ~sub:0 ~cmd:5 ~arg1:dt ~arg2:0)

(* Thaw prologue: re-enter the exact sleep a frozen app was suspended
   in. Command 4 arms at the *absolute* (reference, dt) recorded in the
   frozen image, so the alarm fires at the original deadline no matter
   what clock the prologue runs at; the syscall shape (subscribe →
   command → yield-wait loop) matches [sleep_ticks]'s call_classic, so
   the rebuilt continuation is suspended at the same point. *)
let resume_sleep app =
  match Emu.take_resume_alarm app with
  | Some (reference, dt) ->
      Emu.set_at_sleep app true;
      ignore
        (expect_classic app ~driver:Driver_num.alarm ~sub:0 ~cmd:4
           ~arg1:reference ~arg2:dt);
      Emu.set_at_sleep app false
  | None ->
      raise (Emu.App_panic_exn "resume_sleep: no frozen alarm recorded")

(* The only freeze point thaw accepts for a live app: cursor recorded,
   then suspended in the sleep itself. The at-sleep mark distinguishes
   this suspension from every other yield the body may hit (console
   busy-retry naps, I/O completion waits) — those are witnessable but
   not rebuildable, since the fast-forward can only re-enter the
   checkpoint sleep. *)
let checkpoint_sleep app ~cursor ~ticks =
  Emu.checkpoint app cursor;
  Emu.set_at_sleep app true;
  sleep_ticks app ticks;
  Emu.set_at_sleep app false

let alarm_frequency app =
  match Libtock.command app ~driver:Driver_num.alarm ~cmd:1 ~arg1:0 ~arg2:0 with
  | Syscall.Success_u32 hz -> hz
  | _ -> raise (Emu.App_panic_exn "alarm frequency query failed")

let sleep_ms app ms =
  let hz = alarm_frequency app in
  sleep_ticks app (max 1 (ms * hz / 1000))

let console_write app s =
  let len = String.length s in
  if len = 0 then 0
  else begin
    let addr = Emu.get_buffer app ~tag:"console-tx" ~size:(max len 64) in
    Emu.write_string app ~addr s;
    match
      Libtock.allow_ro app ~driver:Driver_num.console ~num:1 ~addr ~len
    with
    | Error _ -> 0
    | Ok _ ->
        let rec attempt retries =
          match
            call_classic app ~driver:Driver_num.console ~sub:1 ~cmd:1
              ~arg1:len ~arg2:0
          with
          | Ok (n, _, _) -> n
          | Error Error.BUSY when retries > 0 ->
              sleep_ticks app 4;
              attempt (retries - 1)
          | Error _ -> 0
        in
        let n = attempt 16 in
        Libtock.unallow_ro app ~driver:Driver_num.console ~num:1;
        n
  end

let console_read app n =
  let addr = Emu.get_buffer app ~tag:"console-rx" ~size:(max n 64) in
  match Libtock.allow_rw app ~driver:Driver_num.console ~num:1 ~addr ~len:n with
  | Error _ -> Bytes.empty
  | Ok _ -> (
      match
        call_classic app ~driver:Driver_num.console ~sub:2 ~cmd:2 ~arg1:n
          ~arg2:0
      with
      | Ok (got, _, _) ->
          let data = Emu.read_bytes app ~addr ~len:(min got n) in
          Libtock.unallow_rw app ~driver:Driver_num.console ~num:1;
          data
      | Error _ ->
          Libtock.unallow_rw app ~driver:Driver_num.console ~num:1;
          Bytes.empty)

let sensor_read app driver =
  let v, _, _ = expect_classic app ~driver ~sub:0 ~cmd:1 ~arg1:0 ~arg2:0 in
  v

let temperature_read app = sensor_read app Driver_num.temperature

let pressure_read app = sensor_read app Driver_num.pressure

let light_read app = sensor_read app Driver_num.light

let rng_bytes app n =
  let addr = Emu.get_buffer app ~tag:"rng" ~size:(max n 16) in
  match Libtock.allow_rw app ~driver:Driver_num.rng ~num:0 ~addr ~len:n with
  | Error _ -> Bytes.empty
  | Ok _ ->
      let got, _, _ =
        expect_classic app ~driver:Driver_num.rng ~sub:0 ~cmd:1 ~arg1:n ~arg2:0
      in
      let data = Emu.read_bytes app ~addr ~len:(min got n) in
      Libtock.unallow_rw app ~driver:Driver_num.rng ~num:0;
      data

let digest_op app ~driver ~key ~data =
  let dlen = Bytes.length data in
  let daddr = Emu.get_buffer app ~tag:"digest-data" ~size:(max dlen 16) in
  Emu.write_bytes app ~addr:daddr data;
  let oaddr = Emu.get_buffer app ~tag:"digest-out" ~size:32 in
  (match key with
  | Some k ->
      let kaddr = Emu.get_buffer app ~tag:"digest-key" ~size:(Bytes.length k) in
      Emu.write_bytes app ~addr:kaddr k;
      ignore
        (Libtock.allow_ro app ~driver ~num:0 ~addr:kaddr ~len:(Bytes.length k))
  | None -> ());
  ignore (Libtock.allow_ro app ~driver ~num:1 ~addr:daddr ~len:dlen);
  ignore (Libtock.allow_rw app ~driver ~num:0 ~addr:oaddr ~len:32);
  let n, _, _ = expect_classic app ~driver ~sub:0 ~cmd:1 ~arg1:0 ~arg2:0 in
  let out = Emu.read_bytes app ~addr:oaddr ~len:(min n 32) in
  Libtock.unallow_ro app ~driver ~num:1;
  Libtock.unallow_rw app ~driver ~num:0;
  (match key with Some _ -> Libtock.unallow_ro app ~driver ~num:0 | None -> ());
  out

let sha256 app data = digest_op app ~driver:Driver_num.sha ~key:None ~data

let hmac_sha256 app ~key ~data =
  digest_op app ~driver:Driver_num.hmac ~key:(Some key) ~data

let aes_ctr app ~key ~iv data =
  let len = Bytes.length data in
  let kaddr = Emu.get_buffer app ~tag:"aes-key" ~size:16 in
  let iaddr = Emu.get_buffer app ~tag:"aes-iv" ~size:16 in
  let daddr = Emu.get_buffer app ~tag:"aes-data" ~size:(max len 16) in
  Emu.write_bytes app ~addr:kaddr key;
  Emu.write_bytes app ~addr:iaddr iv;
  Emu.write_bytes app ~addr:daddr data;
  ignore (Libtock.allow_ro app ~driver:Driver_num.aes ~num:0 ~addr:kaddr ~len:16);
  ignore (Libtock.allow_ro app ~driver:Driver_num.aes ~num:1 ~addr:iaddr ~len:16);
  ignore (Libtock.allow_rw app ~driver:Driver_num.aes ~num:0 ~addr:daddr ~len);
  let n, _, _ =
    expect_classic app ~driver:Driver_num.aes ~sub:0 ~cmd:1 ~arg1:0 ~arg2:0
  in
  let out = Emu.read_bytes app ~addr:daddr ~len:(min n len) in
  Libtock.unallow_ro app ~driver:Driver_num.aes ~num:0;
  Libtock.unallow_ro app ~driver:Driver_num.aes ~num:1;
  Libtock.unallow_rw app ~driver:Driver_num.aes ~num:0;
  out

(* ---- kv ---- *)

let kv_call app ~cmd ~key ~value =
  let klen = String.length key in
  let kaddr = Emu.get_buffer app ~tag:"kv-key" ~size:(max klen 16) in
  Emu.write_string app ~addr:kaddr key;
  ignore
    (Libtock.allow_ro app ~driver:Driver_num.kv_store ~num:0 ~addr:kaddr
       ~len:klen);
  (match value with
  | Some v ->
      let vaddr =
        Emu.get_buffer app ~tag:"kv-value" ~size:(max (Bytes.length v) 16)
      in
      Emu.write_bytes app ~addr:vaddr v;
      ignore
        (Libtock.allow_ro app ~driver:Driver_num.kv_store ~num:1 ~addr:vaddr
           ~len:(Bytes.length v))
  | None -> ());
  let oaddr = Emu.get_buffer app ~tag:"kv-out" ~size:256 in
  ignore
    (Libtock.allow_rw app ~driver:Driver_num.kv_store ~num:0 ~addr:oaddr
       ~len:256);
  let r =
    call_classic app ~driver:Driver_num.kv_store ~sub:0 ~cmd ~arg1:0 ~arg2:0
  in
  Libtock.unallow_ro app ~driver:Driver_num.kv_store ~num:0;
  Libtock.unallow_ro app ~driver:Driver_num.kv_store ~num:1;
  Libtock.unallow_rw app ~driver:Driver_num.kv_store ~num:0;
  match r with
  | Error e -> Error e
  | Ok (status, len, _) ->
      if status = 0 then Ok (Some (Emu.read_bytes app ~addr:oaddr ~len))
      else if status = -Error.to_int Error.NODEVICE then Ok None
      else
        Error
          (Option.value (Error.of_int (-status)) ~default:Error.FAIL)

let kv_set app ~key ~value =
  match kv_call app ~cmd:2 ~key ~value:(Some value) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let kv_get app ~key = kv_call app ~cmd:1 ~key ~value:None

let kv_delete app ~key =
  match kv_call app ~cmd:3 ~key ~value:None with
  | Ok (Some b) -> Ok (Bytes.length b > 0)
  | Ok None -> Ok false
  | Error e -> Error e

(* ---- radio ---- *)

let radio_send app ~dest payload =
  let len = Bytes.length payload in
  let addr = Emu.get_buffer app ~tag:"radio-tx" ~size:(max len 16) in
  Emu.write_bytes app ~addr payload;
  ignore (Libtock.allow_ro app ~driver:Driver_num.radio ~num:0 ~addr ~len);
  let r =
    call_classic app ~driver:Driver_num.radio ~sub:0 ~cmd:1 ~arg1:dest ~arg2:len
  in
  Libtock.unallow_ro app ~driver:Driver_num.radio ~num:0;
  match r with Ok _ -> Ok () | Error e -> Error e

let radio_listen app ~rx_buf_size =
  let addr = Emu.get_buffer app ~tag:"radio-rx" ~size:rx_buf_size in
  ignore
    (Libtock.allow_rw app ~driver:Driver_num.radio ~num:0 ~addr
       ~len:rx_buf_size);
  ignore (Libtock.command app ~driver:Driver_num.radio ~cmd:2 ~arg1:0 ~arg2:0)

let radio_next app =
  let got = ref None in
  ignore
    (Libtock.subscribe app ~driver:Driver_num.radio ~sub:1 (fun src len _ ->
         got := Some (src, len)));
  while !got = None do
    Libtock.yield_wait app
  done;
  match !got with
  | Some (src, len) ->
      let addr = Emu.get_buffer app ~tag:"radio-rx" ~size:len in
      (src, Emu.read_bytes app ~addr ~len)
  | None -> (0, Bytes.empty)

(* ---- ipc ---- *)

let ipc_register app =
  ignore (Libtock.command app ~driver:Driver_num.ipc ~cmd:2 ~arg1:0 ~arg2:0)

let ipc_discover app name =
  let len = String.length name in
  let addr = Emu.get_buffer app ~tag:"ipc-name" ~size:(max len 16) in
  Emu.write_string app ~addr name;
  ignore (Libtock.allow_ro app ~driver:Driver_num.ipc ~num:0 ~addr ~len);
  let r = Libtock.command app ~driver:Driver_num.ipc ~cmd:1 ~arg1:0 ~arg2:0 in
  Libtock.unallow_ro app ~driver:Driver_num.ipc ~num:0;
  match r with
  | Syscall.Success_u32 pid -> Ok pid
  | Syscall.Failure e -> Error e
  | _ -> Error Error.FAIL

let ipc_notify app ~pid ~value =
  match Libtock.command app ~driver:Driver_num.ipc ~cmd:3 ~arg1:pid ~arg2:value with
  | Syscall.Success -> Ok ()
  | Syscall.Failure e -> Error e
  | _ -> Error Error.FAIL

let ipc_send_bytes app ~pid payload =
  let len = Bytes.length payload in
  let addr = Emu.get_buffer app ~tag:"ipc-tx" ~size:(max len 16) in
  Emu.write_bytes app ~addr payload;
  ignore (Libtock.allow_ro app ~driver:Driver_num.ipc ~num:1 ~addr ~len);
  let r = Libtock.command app ~driver:Driver_num.ipc ~cmd:4 ~arg1:pid ~arg2:len in
  Libtock.unallow_ro app ~driver:Driver_num.ipc ~num:1;
  match r with
  | Syscall.Success_u32 n -> Ok n
  | Syscall.Failure e -> Error e
  | _ -> Error Error.FAIL

let ipc_open_mailbox app ~size =
  let addr = Emu.get_buffer app ~tag:"ipc-rx" ~size in
  ignore (Libtock.allow_rw app ~driver:Driver_num.ipc ~num:1 ~addr ~len:size)

let ipc_next_message app =
  let got = ref None in
  ignore
    (Libtock.subscribe app ~driver:Driver_num.ipc ~sub:1 (fun sender n _ ->
         got := Some (sender, n)));
  while !got = None do
    Libtock.yield_wait app
  done;
  match !got with
  | Some (sender, n) ->
      let addr = Emu.get_buffer app ~tag:"ipc-rx" ~size:n in
      (sender, Emu.read_bytes app ~addr ~len:n)
  | None -> (0, Bytes.empty)

let ipc_next_notification app =
  let got = ref None in
  ignore
    (Libtock.subscribe app ~driver:Driver_num.ipc ~sub:0 (fun sender v _ ->
         got := Some (sender, v)));
  while !got = None do
    Libtock.yield_wait app
  done;
  Option.value !got ~default:(0, 0)
