(* otock-lint: allow-file userland-kernel-internals — Emu is the
   userland/kernel bridge: its interface hands Process.execution values
   to the kernel and Process handles to the harness. *)

(** Userspace process emulation over OCaml effect handlers.

    A process's "machine code" is an OCaml function running inside an
    effect handler; performing {!syscall} or {!work} suspends the
    computation and surfaces a {!Tock.Process.trap} to the kernel, which
    later resumes it — the software rendering of a hardware trap frame and
    context switch. The kernel never sees the handler; it programs against
    {!Tock.Process.execution} only.

    Fidelity points:
    - Syscalls cross the boundary as *raw registers* (encoded/decoded by
      {!Libtock}); there is no shortcut OCaml call into the kernel.
    - Every app memory access is checked against the process's MPU
      configuration; a violation faults the process exactly like a real
      memprotect trap. Apps therefore cannot read kernel-owned grant
      memory even inside their own RAM block.
    - Preemption happens at {!work} points against the scheduler's fuel
      budget; leftover work carries across slices.
    - An app's [main] returning is an implicit [exit 0] syscall.

    The upcall table maps integer "function pointers" to OCaml closures —
    the analogue of userspace callback addresses passed to subscribe. *)

type app
(** Handle given to app code: its process, allocator, and upcall table. *)

exception App_panic_exn of string
(** Raise inside app code to fault the process ("app panic"). *)

val spawn : (app -> unit) -> Tock.Process.t -> Tock.Process.execution
(** Build an execution for the kernel: [Kernel.create_process ~factory:
    (Emu.spawn main)]. *)

val proc : app -> Tock.Process.t

val proc_name : app -> string
(** Name of the app's process — so app code need not touch
    {!Tock.Process} itself. *)

(** {2 Traps} *)

val syscall : app -> int array -> [ `Regs of int array
                                  | `Upcall of int * int * int * int * int ]
(** Perform a raw syscall (5 registers). Returns either return registers
    or an upcall delivery [(fnptr, appdata, a0, a1, a2)] — used only by
    {!Libtock}, which gives these a typed surface. *)

val work : app -> int -> unit
(** Consume [n] simulated CPU cycles; the only preemption point. *)

(** {2 Memory (MPU-checked)} *)

val alloc : app -> int -> int
(** Bump-allocate [n] bytes (8-byte aligned) in app RAM and return the
    *address*. Issues a [brk] memop through the real syscall path when the
    app break must grow. Faults the process on exhaustion. *)

val get_buffer : app -> tag:string -> size:int -> int
(** Named reusable buffer: allocated once per tag (re-allocated larger if
    needed), so loops don't leak the bump allocator. The recorded size is
    what was actually allocated (whole 8-byte granules, at least double
    the outgrown buffer), so near-miss and alternating request sizes
    reuse instead of leaking. Returns the address. *)

val read_u8 : app -> addr:int -> int

val write_u8 : app -> addr:int -> v:int -> unit

val read_bytes : app -> addr:int -> len:int -> bytes
(** Copying read: returns a fresh buffer. Prefer {!read_into} on hot
    paths. *)

val write_bytes : app -> addr:int -> bytes -> unit

val read_u32 : app -> addr:int -> int
(** Little-endian, any alignment. Allocation-free: the scalar loads and
    stores are the data-plane inner loop, so they build the word from
    immediate [uint16] reads instead of boxing an [int32] or cutting a
    4-byte buffer. *)

val write_u32 : app -> addr:int -> v:int -> unit
(** Little-endian, any alignment, allocation-free (see {!read_u32}). *)

val read_into : app -> addr:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Non-copying read: blit app memory (RAM or flash) straight into
    [dst] at [dst_off]. One MPU check, one blit, no allocation. *)

val write_from : app -> addr:int -> src:bytes -> src_off:int -> len:int -> unit
(** Non-copying write: blit [len] bytes of [src] into app RAM. *)

val write_string : app -> addr:int -> string -> unit
(** Blit a string into app RAM without an intermediate [Bytes.of_string]
    copy. *)

(** {2 Copy accounting}

    Bulk app-memory transfers ({!read_into}, {!read_bytes}, {!write_from},
    {!write_bytes}, {!write_string}) are tallied globally, mirroring
    [Tock.Subslice]'s counters on the kernel side. The iopath benchmark
    diffs these around a syscall to prove a path is zero-copy. Scalar
    accesses are register traffic and stay uncounted. *)

val copy_count : unit -> int

val copied_bytes : unit -> int

val reset_copy_counters : unit -> unit

(** {2 Upcall closures} *)

val register_upcall_fn : app -> (int -> int -> int -> unit) -> int
(** Returns a fresh nonzero "function pointer" for subscribe. *)

val lookup_upcall_fn : app -> int -> (int -> int -> int -> unit) option

(** {2 Freeze/thaw checkpoints}

    Effect continuations cannot be serialized, so a frozen board's apps
    are resumed by re-running their factory and fast-forwarding: an app
    that wants to survive {!Tock.Kernel.freeze}/[thaw] records a loop
    cursor with {!checkpoint} before each long sleep, and on a thawed
    board reads it back with {!resume_point} to skip the iterations
    already executed (observable state — RAM, counters, subscriptions —
    is restored wholesale from the frozen image afterwards, so the
    fast-forward only has to re-create the continuation shape). *)

val checkpoint : app -> int -> unit
(** Record the app's loop cursor (nonzero) on its process. *)

val resume_point : app -> int
(** 0 on a first run; the last checkpointed cursor when the factory is
    re-run by thaw. *)

val take_resume_alarm : app -> (int * int) option
(** The (reference, dt) of the alarm the frozen app was sleeping on,
    installed by thaw; consumed (one-shot). Used by
    {!Tock_userland.Libtock_sync.resume_sleep}. *)

val set_at_sleep : app -> bool -> unit
(** Mark (or clear) the process as suspended at its post-checkpoint
    protocol sleep — the only freeze point {!Tock.Kernel.thaw} accepts
    for a live process. Maintained by
    {!Tock_userland.Libtock_sync.checkpoint_sleep} and [resume_sleep];
    apps never call it directly. *)
