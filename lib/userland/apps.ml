(* Only the syscall-ABI surface of the core kernel: apps are the code
   the trust taxonomy says must not see kernel internals. *)
module Error = Tock.Error
module Syscall = Tock.Syscall
module Driver_num = Tock.Driver_num

let to_factory main proc = Emu.spawn main proc

let registry apps name =
  Option.map to_factory (List.assoc_opt name apps)

let printf app fmt = Printf.ksprintf (fun s -> ignore (Libtock_sync.console_write app s)) fmt

(* ---- basic apps ---- *)

let hello app =
  Emu.work app 200;
  printf app "Hello from %s!\r\n" (Emu.proc_name app);
  Libtock.exit app 0

(* The periodic apps are *resumable*: each loop checkpoints its cursor
   before sleeping, so [Kernel.thaw] can re-run the factory on a thawed
   board and fast-forward in O(1) — skip the already-executed
   iterations, re-enter the recorded sleep ([resume_sleep]), and let the
   kernel patch observable state (RAM, counters, subscriptions) back
   from the frozen image. The body between resume point and sleep must
   not run again for past iterations; everything it did is in the
   witness. *)

let counter ~n ~period_ticks app =
  let k0 = Emu.resume_point app in
  if k0 > 0 then Libtock_sync.resume_sleep app;
  for i = k0 + 1 to n do
    Emu.work app 100;
    printf app "%s: count %d\r\n" (Emu.proc_name app) i;
    Libtock_sync.checkpoint_sleep app ~cursor:i ~ticks:period_ticks
  done;
  Libtock.exit app 0

let blink ~led ~period_ticks ~blinks app =
  let k0 = Emu.resume_point app in
  if k0 > 0 then Libtock_sync.resume_sleep app;
  for i = k0 + 1 to blinks do
    ignore (Libtock.command app ~driver:Driver_num.led ~cmd:3 ~arg1:led ~arg2:0);
    Libtock_sync.checkpoint_sleep app ~cursor:i ~ticks:period_ticks
  done;
  Libtock.exit app 0

let sensor_logger ~samples ~period_ticks app =
  let k0 = Emu.resume_point app in
  if k0 > 0 then Libtock_sync.resume_sleep app;
  for i = k0 + 1 to samples do
    let cc = Libtock_sync.temperature_read app in
    Emu.work app 150;
    printf app "sample %d: %d.%02d C\r\n" i (cc / 100) (abs cc mod 100);
    Libtock_sync.checkpoint_sleep app ~cursor:i ~ticks:period_ticks
  done;
  Libtock.exit app 0

(* ---- radio apps ---- *)

let radio_beacon ~frames ~period_ticks app =
  for i = 1 to frames do
    let cc = Libtock_sync.temperature_read app in
    let payload = Bytes.create 8 in
    Bytes.set_int32_le payload 0 (Int32.of_int i);
    Bytes.set_int32_le payload 4 (Int32.of_int cc);
    (match Libtock_sync.radio_send app ~dest:0xFFFF payload with
    | Ok () -> ()
    | Error e -> printf app "beacon: send failed (%s)\r\n" (Error.to_string e));
    Libtock_sync.sleep_ticks app period_ticks
  done;
  Libtock.exit app 0

let radio_sink ~expect app =
  Libtock_sync.radio_listen app ~rx_buf_size:32;
  for _ = 1 to expect do
    let src, payload = Libtock_sync.radio_next app in
    if Bytes.length payload >= 8 then begin
      let seq = Int32.to_int (Bytes.get_int32_le payload 0) in
      let cc = Int32.to_int (Bytes.get_int32_le payload 4) in
      printf app "rx from %04x: seq=%d temp=%d\r\n" src seq cc
    end
  done;
  printf app "sink: done\r\n";
  Libtock.exit app 0

(* ---- 2FA token ---- *)

let token_key = Bytes.of_string "\x10\x32\x54\x76\x98\xba\xdc\xfe\x01\x23\x45\x67\x89\xab\xcd\xef"

let key_magic = "KEY!"

(* The magic as the little-endian u32 an app reads back from flash, so
   the scan loop compares one immediate word per step instead of cutting
   a fresh 4-byte buffer per candidate address. *)
let key_magic_u32 =
  Char.code key_magic.[0]
  lor (Char.code key_magic.[1] lsl 8)
  lor (Char.code key_magic.[2] lsl 16)
  lor (Char.code key_magic.[3] lsl 24)

let token_flash_key_offset = 4

let make_token_binary () =
  let b = Bytes.make 64 '\x00' in
  Bytes.blit_string key_magic 0 b 0 4;
  Bytes.blit token_key 0 b token_flash_key_offset 16;
  Bytes.blit_string "hmac-token-code" 0 b 24 15;
  b

(* Locate the key inside this app's own flash image (where the TBF binary
   put it) — never copying it to RAM: the allow-readonly points straight
   at flash (paper §3.3.3). *)
let find_flash_key app =
  match Libtock.memop app ~op:Syscall.memop_flash_start ~arg:0 with
  | Syscall.Success_u32 fstart -> (
      match Libtock.memop app ~op:Syscall.memop_flash_end ~arg:0 with
      | Syscall.Success_u32 fend ->
          let rec scan addr =
            if addr + 20 > fend then None
            else if Emu.read_u32 app ~addr = key_magic_u32 then Some (addr + 4)
            else scan (addr + 4)
          in
          scan fstart
      | _ -> None)
  | _ -> None

let hmac_flash_key app ~key_addr ~challenge =
  let daddr = Emu.get_buffer app ~tag:"chal" ~size:8 in
  Emu.write_u32 app ~addr:daddr ~v:challenge;
  let oaddr = Emu.get_buffer app ~tag:"tag" ~size:32 in
  ignore
    (Libtock.allow_ro app ~driver:Driver_num.hmac ~num:0 ~addr:key_addr ~len:16);
  ignore (Libtock.allow_ro app ~driver:Driver_num.hmac ~num:1 ~addr:daddr ~len:4);
  ignore (Libtock.allow_rw app ~driver:Driver_num.hmac ~num:0 ~addr:oaddr ~len:32);
  let r =
    Libtock_sync.call_classic app ~driver:Driver_num.hmac ~sub:0 ~cmd:1 ~arg1:0
      ~arg2:0
  in
  Libtock.unallow_ro app ~driver:Driver_num.hmac ~num:0;
  Libtock.unallow_ro app ~driver:Driver_num.hmac ~num:1;
  Libtock.unallow_rw app ~driver:Driver_num.hmac ~num:0;
  match r with
  | Ok (n, _, _) when n >= 4 -> Some (Emu.read_u32 app ~addr:oaddr)
  | _ -> None

let hmac_token ~challenges app =
  match find_flash_key app with
  | None ->
      printf app "token: no key in flash!\r\n";
      Libtock.exit app 1
  | Some key_addr ->
      Libtock_sync.ipc_register app;
      printf app "token: ready\r\n";
      for _ = 1 to challenges do
        let sender, challenge = Libtock_sync.ipc_next_notification app in
        Emu.work app 300;
        match hmac_flash_key app ~key_addr ~challenge with
        | Some response ->
            ignore
              (Libtock_sync.ipc_notify app ~pid:sender
                 ~value:(response land 0xFFFF))
        | None -> ignore (Libtock_sync.ipc_notify app ~pid:sender ~value:0)
      done;
      printf app "token: served\r\n";
      Libtock.exit app 0

let hmac_token_requester ~service ~challenges app =
  (* Give the token a moment to register. *)
  let rec discover tries =
    match Libtock_sync.ipc_discover app service with
    | Ok pid -> Some pid
    | Error _ when tries > 0 ->
        Libtock_sync.sleep_ticks app 32;
        discover (tries - 1)
    | Error _ -> None
  in
  match discover 50 with
  | None ->
      printf app "requester: no token service\r\n";
      Libtock.exit app 1
  | Some pid ->
      for i = 1 to challenges do
        (match Libtock_sync.ipc_notify app ~pid ~value:(0x1000 + i) with
        | Ok () ->
            let _, response = Libtock_sync.ipc_next_notification app in
            printf app "challenge %d -> %04x\r\n" i response
        | Error e -> printf app "notify failed: %s\r\n" (Error.to_string e))
      done;
      Libtock.exit app 0

let wait_button_press app =
  let pressed = ref false in
  ignore
    (Libtock.subscribe app ~driver:Driver_num.button ~sub:0 (fun _ is_press _ ->
         if is_press = 1 then pressed := true));
  ignore (Libtock.command app ~driver:Driver_num.button ~cmd:1 ~arg1:0 ~arg2:0);
  while not !pressed do
    Libtock.yield_wait app
  done;
  ignore (Libtock.command app ~driver:Driver_num.button ~cmd:2 ~arg1:0 ~arg2:0);
  Libtock.unsubscribe app ~driver:Driver_num.button ~sub:0

let u2f_token ~challenges app =
  match find_flash_key app with
  | None ->
      printf app "u2f: no key in flash!\r\n";
      Libtock.exit app 1
  | Some key_addr ->
      Libtock_sync.ipc_register app;
      printf app "u2f: ready\r\n";
      for _ = 1 to challenges do
        let sender, challenge = Libtock_sync.ipc_next_notification app in
        printf app "u2f: touch to approve %04x\r\n" challenge;
        wait_button_press app;
        Emu.work app 300;
        match hmac_flash_key app ~key_addr ~challenge with
        | Some response ->
            ignore
              (Libtock_sync.ipc_notify app ~pid:sender
                 ~value:(response land 0xFFFF))
        | None -> ignore (Libtock_sync.ipc_notify app ~pid:sender ~value:0)
      done;
      printf app "u2f: served\r\n";
      Libtock.exit app 0

(* ---- adversarial / fault apps ---- *)

let fault_injector ~delay_ticks app =
  printf app "faulty: alive\r\n";
  Libtock_sync.sleep_ticks app delay_ticks;
  (* Read far outside any region this process owns. *)
  ignore (Emu.read_u8 app ~addr:0x0000_1000);
  printf app "faulty: should not get here\r\n";
  Libtock.exit app 0

let memory_hog app =
  (* Touch console and alarm first so their grants are allocated before we
     exhaust the block: grants allocated later on our behalf will fail
     with NOMEM (contained in this process), but these keep working. *)
  printf app "hog: starting\r\n";
  Libtock_sync.sleep_ticks app 8;
  let grabbed = ref 0 in
  let rec grab () =
    match Libtock.memop app ~op:Syscall.memop_sbrk ~arg:1024 with
    | Syscall.Success_u32 _ ->
        grabbed := !grabbed + 1024;
        grab ()
    | _ -> ()
  in
  grab ();
  printf app "hog: grabbed %d bytes, kernel still alive\r\n" !grabbed;
  for _ = 1 to 5 do
    Libtock_sync.sleep_ticks app 64
  done;
  Libtock.exit app 0

let spinner app =
  printf app "spinner: start\r\n";
  let rec spin () =
    Emu.work app 1000;
    spin ()
  in
  spin ()

(* ---- kv workload ---- *)

let kv_user ~rounds app =
  let ok = ref 0 in
  for i = 1 to rounds do
    let key = Printf.sprintf "key-%d" (i mod 7) in
    let value = Bytes.of_string (Printf.sprintf "value-%d-%d" i (i * 31)) in
    (match Libtock_sync.kv_set app ~key ~value with
    | Ok () -> (
        match Libtock_sync.kv_get app ~key with
        | Ok (Some got) when Bytes.equal got value -> incr ok
        | _ -> printf app "kv: roundtrip mismatch at %d\r\n" i)
    | Error e -> printf app "kv: set failed (%s)\r\n" (Error.to_string e));
    if i mod 5 = 0 then ignore (Libtock_sync.kv_delete app ~key:"key-0")
  done;
  printf app "kv: %d/%d roundtrips ok\r\n" !ok rounds;
  Libtock.exit app 0
