(** libtock-sync: synchronous wrappers over the asynchronous syscall
    interface (paper §3.2).

    Root-of-trust applications are mostly sequential state machines, and
    "a simple synchronous operation ... can become a half dozen system
    calls". This module provides the three call patterns whose costs the
    [e-syscall-patterns] experiment compares:

    - {!call_classic}: subscribe → command → yield-wait (looping until our
      completion flag) → unsubscribe — the original 4+-syscall pattern;
    - {!waitfor_handle}/{!call_waitfor}: command → yield-wait-for, after a
      one-time subscription — the mainline Tock 2.x improvement;
    - {!call_blocking}: the single blocking command the Ti50 fork added
      (fails NOSUPPORT unless the kernel enables the extension).

    The typed helpers below ({!sleep_ticks}, {!console_write}, ...) use
    [call_classic] by default, matching what libtock-c's synchronous
    layer does. *)

type result3 = (int * int * int, Tock.Error.t) result

val call_classic :
  Emu.app -> driver:int -> sub:int -> cmd:int -> arg1:int -> arg2:int -> result3

type waitfor_handle

val waitfor_handle : Emu.app -> driver:int -> sub:int -> waitfor_handle
(** Performs the one-time dummy subscription. *)

val call_waitfor :
  waitfor_handle -> cmd:int -> arg1:int -> arg2:int -> result3

val call_blocking :
  Emu.app -> driver:int -> sub:int -> cmd:int -> arg1:int -> arg2:int -> result3

val call_with_timeout :
  Emu.app ->
  driver:int ->
  sub:int ->
  cmd:int ->
  arg1:int ->
  arg2:int ->
  timeout_ticks:int ->
  (int * int * int) option
(** The paper's §3.2 example, literally: "a simple synchronous operation
    such as 'wait for a response with a timeout' can become a half dozen
    system calls — allow a buffer, register two callbacks, issue commands,
    then wait". Subscribes both the operation's and the alarm's upcalls,
    starts both, yields until one fires, then cancels and unsubscribes the
    other. [None] = timed out. *)

(** {2 Typed synchronous services} *)

val sleep_ticks : Emu.app -> int -> unit
(** Block (yielding) for [dt] alarm ticks. *)

val resume_sleep : Emu.app -> unit
(** Thaw prologue for resumable apps: re-enter the sleep the frozen app
    was suspended in, re-arming the alarm at the {e absolute}
    (reference, dt) installed by {!Tock.Kernel.thaw} (alarm command 4)
    and blocking in the same subscribe/command/yield-wait shape as
    {!sleep_ticks}. Call only when {!Emu.resume_point} is nonzero;
    panics the app if no frozen alarm was recorded. *)

val checkpoint_sleep : Emu.app -> cursor:int -> ticks:int -> unit
(** Record the loop [cursor] ({!Emu.checkpoint}), then sleep [ticks]
    with the process marked at its protocol sleep — the one suspension
    point {!Tock.Kernel.thaw} will accept for a live process (a freeze
    that catches the app in any other wait falls back to replay).
    Resumable apps must use this instead of a bare checkpoint +
    {!sleep_ticks} pair. *)

val sleep_ms : Emu.app -> int -> unit

val alarm_frequency : Emu.app -> int

val console_write : Emu.app -> string -> int
(** Returns bytes written. *)

val console_read : Emu.app -> int -> bytes

val temperature_read : Emu.app -> int
(** centi-°C. *)

val pressure_read : Emu.app -> int

val light_read : Emu.app -> int

val rng_bytes : Emu.app -> int -> bytes

val sha256 : Emu.app -> bytes -> bytes

val hmac_sha256 : Emu.app -> key:bytes -> data:bytes -> bytes

val aes_ctr : Emu.app -> key:bytes -> iv:bytes -> bytes -> bytes
(** In-place CTR transform; returns the transformed bytes. *)

val kv_set : Emu.app -> key:string -> value:bytes -> (unit, Tock.Error.t) result

val kv_get : Emu.app -> key:string -> (bytes option, Tock.Error.t) result

val kv_delete : Emu.app -> key:string -> (bool, Tock.Error.t) result

val radio_send : Emu.app -> dest:int -> bytes -> (unit, Tock.Error.t) result

val radio_listen : Emu.app -> rx_buf_size:int -> unit
(** Start listening; received frames arrive via {!radio_next}. *)

val radio_next : Emu.app -> int * bytes
(** Block until the next received frame; returns (src, payload). *)

val ipc_register : Emu.app -> unit

val ipc_discover : Emu.app -> string -> (int, Tock.Error.t) result

val ipc_notify : Emu.app -> pid:int -> value:int -> (unit, Tock.Error.t) result

val ipc_next_notification : Emu.app -> int * int
(** Block until notified; returns (sender_pid, value). *)

val ipc_send_bytes : Emu.app -> pid:int -> bytes -> (int, Tock.Error.t) result
(** Copy a message into the target process's shared receive buffer (the
    target must have called {!ipc_open_mailbox}). Returns bytes copied. *)

val ipc_open_mailbox : Emu.app -> size:int -> unit
(** Share a receive buffer with the IPC capsule. *)

val ipc_next_message : Emu.app -> int * bytes
(** Block until a message lands in the mailbox; returns (sender, copy of
    the payload). *)
