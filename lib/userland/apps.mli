(** A library of userspace applications used by the examples, tests, and
    benchmarks — the simulation analogue of the apps in tock/libtock-c.

    Each app is a function over its {!Emu.app} handle; {!to_factory}
    adapts one into the loader/kernel [factory], and {!registry} builds a
    {!Tock.Process_loader.lookup} from named apps. *)

(* otock-lint: allow userland-kernel-internals — the factory adapter is
   the one seam where an app function is handed to the kernel; only the
   opaque Process.t/execution types cross it. *)
val to_factory : (Emu.app -> unit) -> Tock.Process.t -> Tock.Process.execution

(* otock-lint: allow userland-kernel-internals — same seam: a lookup
   table the trusted loader consumes; apps never call through it. *)
val registry : (string * (Emu.app -> unit)) list -> Tock.Process_loader.lookup

(** {2 Apps} *)

val hello : Emu.app -> unit
(** Prints one greeting and exits. *)

val counter : n:int -> period_ticks:int -> Emu.app -> unit
(** Prints [n] numbered lines, sleeping between them, then exits. *)

val blink : led:int -> period_ticks:int -> blinks:int -> Emu.app -> unit

val sensor_logger : samples:int -> period_ticks:int -> Emu.app -> unit
(** Duty-cycled temperature logger: sample, print, sleep. The Signpost
    workload shape (paper §2). *)

val radio_beacon : frames:int -> period_ticks:int -> Emu.app -> unit
(** Broadcasts periodic sensor readings. *)

val radio_sink : expect:int -> Emu.app -> unit
(** Listens and prints received frames until [expect] arrived. *)

val hmac_token : challenges:int -> Emu.app -> unit
(** 2FA-style token: IPC service answering challenges with
    HMAC(key, challenge); the key lives in the app's flash image and is
    shared with the kernel via allow-readonly (paper §3.3.3). *)

val hmac_token_requester : service:string -> challenges:int -> Emu.app -> unit

val u2f_token : challenges:int -> Emu.app -> unit
(** Like {!hmac_token}, but requires a button press (user presence, as on
    a U2F key) before answering each challenge. *)

val fault_injector : delay_ticks:int -> Emu.app -> unit
(** Sleeps, then dereferences memory outside its MPU regions. *)

val memory_hog : Emu.app -> unit
(** Grows its break until the kernel refuses, then keeps running. Proves
    exhaustion is confined to its own block (paper §2.4). *)

val spinner : Emu.app -> unit
(** Burns CPU forever in [work] chunks (scheduler/preemption tests). *)

val kv_user : rounds:int -> Emu.app -> unit
(** Exercises the KV store: set/get/delete cycles, verifying roundtrips. *)

val token_flash_key_offset : int
(** Offset of the 16-byte HMAC key inside the [hmac_token] app's flash
    binary (tests construct the TBF accordingly). *)

val token_key : bytes
(** The key embedded in the token's binary. *)

val make_token_binary : unit -> bytes
(** Binary payload for the [hmac_token] TBF: key at
    [token_flash_key_offset]. *)
