(* otock-lint: allow-file userland-kernel-internals — Emu is the
   userland/kernel bridge, not app code: it implements Process.execution
   (the trap frame and context switch) over effect handlers, so it must
   drive the Process lifecycle directly. App code above it sees only the
   Libtock ABI. *)
open Effect
open Effect.Deep

type sys_resume =
  [ `Regs of int array | `Upcall of int * int * int * int * int ]

type app = {
  a_proc : Tock.Process.t;
  mutable alloc_next : int;
  upcalls : (int, int -> int -> int -> unit) Hashtbl.t;
  mutable next_fn : int;
  scratch : (string, int * int) Hashtbl.t; (* tag -> (addr, size) *)
}

type _ Effect.t +=
  | Sys : int array -> sys_resume Effect.t
  | Work_eff : int -> unit Effect.t

exception App_panic_exn of string

exception Mpu_fault of string

let proc app = app.a_proc

let proc_name app = Tock.Process.name app.a_proc

let syscall _app regs = perform (Sys regs)

let work _app n = if n > 0 then perform (Work_eff n)

(* ---- MPU-checked memory ---- *)

let ram_offset app ~addr ~len kind =
  let p = app.a_proc in
  if not (Tock.Process.check_access p ~addr ~len kind) then
    raise
      (Mpu_fault
         (Printf.sprintf "%s of %d bytes at 0x%x"
            (match kind with `Read -> "read" | `Write -> "write" | `Execute -> "exec")
            len addr));
  addr - Tock.Process.ram_base p

(* The scalar loads/stores below are the simulator's data-plane inner
   loop: every emulated memory access funnels through them. They are
   written to allocate nothing — no intermediate buffer, no boxed int32
   (we compose u32s from immediate uint16 reads), and no variant for the
   flash/RAM dispatch — so a tight copy loop in an app costs only the
   cached MPU check plus the byte accesses, like the hardware it models. *)

let in_flash p ~addr ~len =
  addr >= Tock.Process.flash_base p && addr + len <= Tock.Process.flash_end p

(* Reads may also hit the process's own flash image (code constants). *)
let read_u8 app ~addr =
  let p = app.a_proc in
  if in_flash p ~addr ~len:1 then
    Char.code (Bytes.get (Tock.Process.flash_image p) (addr - Tock.Process.flash_base p))
  else
    Char.code (Bytes.get (Tock.Process.ram_bytes p) (ram_offset app ~addr ~len:1 `Read))

let write_u8 app ~addr ~v =
  let off = ram_offset app ~addr ~len:1 `Write in
  Bytes.set (Tock.Process.ram_bytes app.a_proc) off (Char.chr (v land 0xff))

let get_u32_le b off =
  Bytes.get_uint16_le b off lor (Bytes.get_uint16_le b (off + 2) lsl 16)

let read_u32 app ~addr =
  let p = app.a_proc in
  if in_flash p ~addr ~len:4 then
    get_u32_le (Tock.Process.flash_image p) (addr - Tock.Process.flash_base p)
  else get_u32_le (Tock.Process.ram_bytes p) (ram_offset app ~addr ~len:4 `Read)

let write_u32 app ~addr ~v =
  let off = ram_offset app ~addr ~len:4 `Write in
  let b = Tock.Process.ram_bytes app.a_proc in
  Bytes.set_uint16_le b off (v land 0xffff);
  Bytes.set_uint16_le b (off + 2) ((v lsr 16) land 0xffff)

(* ---- copy accounting ----

   Every bulk transfer across the app/kernel boundary is tallied here,
   the userland mirror of [Subslice]'s counters: the iopath bench diffs
   them around a syscall to prove a path really is zero-copy. Scalar
   accesses are register traffic, not copies, and stay uncounted. *)

let copies = Atomic.make 0

let bytes_moved = Atomic.make 0

let copy_count () = Atomic.get copies

let copied_bytes () = Atomic.get bytes_moved

let reset_copy_counters () =
  Atomic.set copies 0;
  Atomic.set bytes_moved 0

let count_copy len =
  if len > 0 then begin
    Atomic.incr copies;
    ignore (Atomic.fetch_and_add bytes_moved len)
  end

let read_into app ~addr ~len ~dst ~dst_off =
  if dst_off < 0 || len < 0 || dst_off + len > Bytes.length dst then
    raise (App_panic_exn "read_into: bad destination range");
  count_copy len;
  let p = app.a_proc in
  if in_flash p ~addr ~len then
    Bytes.blit (Tock.Process.flash_image p)
      (addr - Tock.Process.flash_base p)
      dst dst_off len
  else
    Bytes.blit (Tock.Process.ram_bytes p)
      (ram_offset app ~addr ~len `Read)
      dst dst_off len

let read_bytes app ~addr ~len =
  let b = Bytes.create len in
  read_into app ~addr ~len ~dst:b ~dst_off:0;
  b

let write_from app ~addr ~src ~src_off ~len =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length src then
    raise (App_panic_exn "write_from: bad source range");
  count_copy len;
  let off = ram_offset app ~addr ~len `Write in
  Bytes.blit src src_off (Tock.Process.ram_bytes app.a_proc) off len

let write_bytes app ~addr data =
  write_from app ~addr ~src:data ~src_off:0 ~len:(Bytes.length data)

let write_string app ~addr s =
  let len = String.length s in
  count_copy len;
  let off = ram_offset app ~addr ~len `Write in
  Bytes.blit_string s 0 (Tock.Process.ram_bytes app.a_proc) off len

(* ---- allocator ---- *)

let align8 n = (n + 7) land lnot 7

let alloc app n =
  if n < 0 then raise (App_panic_exn "alloc: negative size");
  let addr = align8 app.alloc_next in
  let new_next = addr + n in
  let break = Tock.Process.app_break app.a_proc in
  if new_next > break then begin
    (* Grow the break through the real syscall path. *)
    let want = align8 (new_next + 64) in
    let regs =
      Tock.Syscall.encode_call
        (Tock.Syscall.Memop { op = Tock.Syscall.memop_brk; arg = want })
    in
    match syscall app regs with
    | `Regs ret -> (
        match Tock.Syscall.decode_ret ret with
        | Ok Tock.Syscall.Success -> ()
        | _ -> raise (App_panic_exn "out of memory (brk refused)"))
    | `Upcall _ -> raise (App_panic_exn "unexpected upcall during brk")
  end;
  app.alloc_next <- new_next;
  addr

let get_buffer app ~tag ~size =
  match Hashtbl.find_opt app.scratch tag with
  | Some (addr, have) when have >= size -> addr
  | prev ->
      (* Growth leaks the old block down the bump allocator (there is no
         free), so allocate whole 8-byte granules — recording the size we
         actually own, not the size requested — and at least double any
         previous buffer, so alternating request sizes settle instead of
         leaking a fresh block on every flip. *)
      let want =
        match prev with
        | Some (_, have) -> max size (have * 2)
        | None -> size
      in
      let n = align8 want in
      let addr = alloc app n in
      Hashtbl.replace app.scratch tag (addr, n);
      addr

(* ---- upcall function table ---- *)

let register_upcall_fn app fn =
  let id = app.next_fn in
  app.next_fn <- id + 1;
  Hashtbl.replace app.upcalls id fn;
  id

let lookup_upcall_fn app id = Hashtbl.find_opt app.upcalls id

(* ---- freeze/thaw: checkpoints and the kernel bridge ---- *)

let checkpoint app i = Tock.Process.set_checkpoint app.a_proc i

let resume_point app = Tock.Process.checkpoint app.a_proc

let take_resume_alarm app = Tock.Process.take_resume_alarm app.a_proc

let set_at_sleep app v = Tock.Process.set_at_sleep app.a_proc v

(* The emulator's data state beside the continuation, exposed to
   [Kernel.freeze]/[thaw] as closures on the process (the kernel cannot
   depend on this library). *)
let install_bridge app =
  Tock.Process.set_bridge app.a_proc
    {
      Tock.Process.br_residue =
        (fun () ->
          let scratch =
            Hashtbl.fold (fun tag v acc -> (tag, v) :: acc) app.scratch []
          in
          {
            Tock.Process.er_alloc_next = app.alloc_next;
            er_next_fn = app.next_fn;
            er_scratch = List.sort compare scratch;
          });
      br_set_residue =
        (fun r ->
          app.alloc_next <- r.Tock.Process.er_alloc_next;
          app.next_fn <- r.Tock.Process.er_next_fn;
          Hashtbl.reset app.scratch;
          List.iter
            (fun (tag, v) -> Hashtbl.replace app.scratch tag v)
            r.Tock.Process.er_scratch);
      br_remap_upcall =
        (fun ~old_id ~new_id ->
          match Hashtbl.find_opt app.upcalls old_id with
          | None -> false
          | Some fn ->
              Hashtbl.remove app.upcalls old_id;
              Hashtbl.replace app.upcalls new_id fn;
              true);
    }

(* ---- the execution harness ---- *)

type suspension =
  | Not_started of (unit -> unit)
  | In_syscall of (sys_resume, Tock.Process.trap) continuation
  | In_tick of (unit, Tock.Process.trap) continuation * int (* leftover work *)
  | Dead

let implicit_exit =
  Tock.Process.Trap_syscall
    (Tock.Syscall.encode_call (Tock.Syscall.Exit { variant = 0; code = 0 }))

let spawn main p =
  let app =
    {
      a_proc = p;
      alloc_next = Tock.Process.ram_base p;
      upcalls = Hashtbl.create 16;
      next_fn = 1;
      scratch = Hashtbl.create 8;
    }
  in
  install_bridge app;
  let state = ref (Not_started (fun () -> main app)) in
  let remaining = ref 0 in
  let used = ref 0 in
  let handler : (unit, Tock.Process.trap) handler =
    {
      retc =
        (fun () ->
          state := Dead;
          implicit_exit);
      exnc =
        (fun e ->
          state := Dead;
          match e with
          | Mpu_fault m -> Tock.Process.Trap_fault (Tock.Process.Mpu_violation m)
          | App_panic_exn m -> Tock.Process.Trap_fault (Tock.Process.App_panic m)
          | e ->
              Tock.Process.Trap_fault
                (Tock.Process.App_panic (Printexc.to_string e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sys regs ->
              Some
                (fun (k : (a, _) continuation) ->
                  state := In_syscall k;
                  Tock.Process.Trap_syscall regs)
          | Work_eff n ->
              Some
                (fun (k : (a, _) continuation) ->
                  if n <= !remaining then begin
                    remaining := !remaining - n;
                    used := !used + n;
                    continue k ()
                  end
                  else begin
                    used := !used + !remaining;
                    let leftover = n - !remaining in
                    remaining := 0;
                    state := In_tick (k, leftover);
                    Tock.Process.Trap_timeslice_expired
                  end)
          | _ -> None);
    }
  in
  let step ~fuel arg =
    remaining := fuel;
    used := 0;
    let trap =
      match (!state, arg) with
      | Dead, _ ->
          Tock.Process.Trap_fault (Tock.Process.App_panic "resumed dead process")
      | Not_started th, _ -> match_with th () handler
      | In_syscall k, Tock.Process.Rsyscall_ret regs -> continue k (`Regs regs)
      | In_syscall k, Tock.Process.Rupcall { fnptr; appdata; arg0; arg1; arg2 }
        ->
          continue k (`Upcall (fnptr, appdata, arg0, arg1, arg2))
      | In_syscall k, (Tock.Process.Rstart | Tock.Process.Rcontinue) ->
          discontinue k (App_panic_exn "protocol: no syscall return delivered")
      | In_tick (k, leftover), _ ->
          if leftover <= fuel then begin
            remaining := fuel - leftover;
            used := leftover;
            continue k ()
          end
          else begin
            used := fuel;
            state := In_tick (k, leftover - fuel);
            Tock.Process.Trap_timeslice_expired
          end
    in
    (trap, !used)
  in
  let destroy () = state := Dead in
  { Tock.Process.step; destroy }
