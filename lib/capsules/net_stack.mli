(** A small reliable link layer over the packet radio — the class of
    "network and wireless protocols" the paper wishes it could reuse from
    third parties but cannot audit (§3.5), so Tock-style systems write
    their own.

    Frame format (the frame on the air is a scatter-gather iovec: staged
    header and trailer windows around the caller's payload window, which
    is never copied — the radio's DMA gather serializes them):

    {v  'T' 'K' | seq u8 | flags u8 | src u16le | dst u16le | len u8 | payload | crc16le  v}

    Features:
    - CRC-16/CCITT over header+payload; corrupt frames drop (counted);
    - unicast frames are acknowledged; unacked frames retransmit (up to
      [max_retries] times) on a virtual-alarm timer, recovering from the
      medium's losses and collisions; a frame that is never acked resolves
      NOACK — reliability is bounded, not absolute;
    - duplicate suppression per (src, seq) sliding window;
    - fragmentation for unicast datagrams larger than one frame (up to 8
      acked fragments, reassembled per (src, datagram id));
    - non-'TK' frames pass through to a raw receive client, so the plain
      radio syscall driver can coexist on the same radio.

    The syscall driver (0x30002) mirrors the radio driver's protocol but
    with delivery guarantees: allow-ro 0 + command 1 (dest, len) = send
    reliably, upcall sub 0 = [(status, retries_used, 0)], status 0 = acked,
    negative = gave up; allow-rw 0 + command 2 = receive datagrams (upcall
    sub 1 = [(src, len, 0)]). *)

type t

val create :
  ?max_retries:int ->
  Tock.Kernel.t ->
  Tock.Hil.radio ->
  Alarm_mux.t ->
  ack_timeout_ticks:int ->
  t
(** Default [max_retries]: 3 (so up to 4 transmissions per unicast). *)

val driver : t -> Tock.Driver.t

(** {2 Kernel-side API (used by tests and other capsules)} *)

val send :
  t -> dest:int -> bytes -> on_result:((unit, Tock.Error.t) result -> unit) ->
  (unit, Tock.Error.t) result
(** Reliable unicast (or fire-and-forget broadcast to 0xFFFF). BUSY if a
    send is in flight. Wraps the buffer in a window and calls
    {!send_sub}; the bytes must not be mutated until [on_result]. *)

val send_sub :
  t -> dest:int -> Tock.Subslice.t ->
  on_result:((unit, Tock.Error.t) result -> unit) ->
  (unit, Tock.Error.t) result
(** Zero-copy send: the window's bytes ride in the transmit iovec (and
    its retransmissions, and its fragments) in place. The caller must
    keep the bytes stable until [on_result] fires. *)

val set_receive : t -> (src:int -> bytes -> unit) -> unit

val set_raw_receive : t -> (src:int -> bytes -> unit) -> unit
(** Non-'TK' traffic. *)

val raw_radio : t -> Tock.Hil.radio
(** A pass-through radio view carrying non-'TK' traffic, so the plain
    radio syscall driver can sit beside the reliable layer on one radio. *)

val start : t -> unit
(** Power the radio into listening. *)

(** {2 Statistics} *)

val retransmissions : t -> int

val duplicates_dropped : t -> int

val crc_failures : t -> int

val acks_sent : t -> int

val datagrams_reassembled : t -> int

val crc16 : bytes -> off:int -> len:int -> int
(** CRC-16/CCITT-FALSE — an alias for the shared {!Tock.Crc16.digest}
    (table-driven), kept for tests. *)

val crc16_ref : bytes -> off:int -> len:int -> int
(** The bitwise oracle ({!Tock.Crc16.Reference.digest}) the tables are
    derived from. *)

(** {2 Round-trip oracles (tests and benchmarks)} *)

val max_payload : int
(** Largest single-frame payload (100 bytes). *)

val frag_chunk : int
(** Payload bytes carried per fragment. *)

val max_fragments : int
(** Fragments per datagram, bounding [send] at
    [max_fragments * frag_chunk] bytes. *)

val round_trip :
  src:int -> dst:int -> Tock.Subslice.t -> Tock.Subslice.t -> int
(** Single-frame compose→wire→parse→deliver pipeline over the current
    zero-copy path: iovec compose with the incremental CRC, one hardware
    gather, in-place parse, one delivery blit into the out window.
    Returns the delivered length (0 = frame rejected). *)

(** The pre-zero-copy pipeline, byte for byte: copy out of the sender's
    buffer, build an owned frame, blit it through a staging buffer, parse
    with the byte-at-a-time table CRC, cut the body out, blit it into the
    receiver's buffer. Equivalence oracle and speedup baseline for
    {!round_trip}. *)
module Reference : sig
  val build_frame :
    seq:int -> flags:int -> src:int -> dst:int -> bytes -> bytes

  val parse_frame : bytes -> (int * bytes) option
  (** [Some (src, payload)] for a well-formed frame. *)

  val round_trip : src:int -> dst:int -> bytes -> bytes -> int
end
