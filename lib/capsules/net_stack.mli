(** A small reliable link layer over the packet radio — the class of
    "network and wireless protocols" the paper wishes it could reuse from
    third parties but cannot audit (§3.5), so Tock-style systems write
    their own.

    Frame format (prepended to the payload in one SubSlice, Fig.-4 style —
    the payload is never copied):

    {v  'T' 'K' | seq u8 | flags u8 | src u16le | dst u16le | len u8 | payload | crc16le  v}

    Features:
    - CRC-16/CCITT over header+payload; corrupt frames drop (counted);
    - unicast frames are acknowledged; unacked frames retransmit (up to
      [max_retries] times) on a virtual-alarm timer, recovering from the
      medium's losses and collisions; a frame that is never acked resolves
      NOACK — reliability is bounded, not absolute;
    - duplicate suppression per (src, seq) sliding window;
    - fragmentation for unicast datagrams larger than one frame (up to 8
      acked fragments, reassembled per (src, datagram id));
    - non-'TK' frames pass through to a raw receive client, so the plain
      radio syscall driver can coexist on the same radio.

    The syscall driver (0x30002) mirrors the radio driver's protocol but
    with delivery guarantees: allow-ro 0 + command 1 (dest, len) = send
    reliably, upcall sub 0 = [(status, retries_used, 0)], status 0 = acked,
    negative = gave up; allow-rw 0 + command 2 = receive datagrams (upcall
    sub 1 = [(src, len, 0)]). *)

type t

val create :
  ?max_retries:int ->
  Tock.Kernel.t ->
  Tock.Hil.radio ->
  Alarm_mux.t ->
  ack_timeout_ticks:int ->
  t
(** Default [max_retries]: 3 (so up to 4 transmissions per unicast). *)

val driver : t -> Tock.Driver.t

(** {2 Kernel-side API (used by tests and other capsules)} *)

val send :
  t -> dest:int -> bytes -> on_result:((unit, Tock.Error.t) result -> unit) ->
  (unit, Tock.Error.t) result
(** Reliable unicast (or fire-and-forget broadcast to 0xFFFF). BUSY if a
    send is in flight. *)

val set_receive : t -> (src:int -> bytes -> unit) -> unit

val set_raw_receive : t -> (src:int -> bytes -> unit) -> unit
(** Non-'TK' traffic. *)

val raw_radio : t -> Tock.Hil.radio
(** A pass-through radio view carrying non-'TK' traffic, so the plain
    radio syscall driver can sit beside the reliable layer on one radio. *)

val start : t -> unit
(** Power the radio into listening. *)

(** {2 Statistics} *)

val retransmissions : t -> int

val duplicates_dropped : t -> int

val crc_failures : t -> int

val acks_sent : t -> int

val datagrams_reassembled : t -> int

val crc16 : bytes -> off:int -> len:int -> int
(** CRC-16/CCITT-FALSE, exposed for tests. Table-driven (256-entry table
    built at module init). *)

val crc16_ref : bytes -> off:int -> len:int -> int
(** The bitwise CRC the table is derived from — the equivalence oracle
    and speedup baseline for {!crc16}. *)
