open Tock

let allow_tx = 1

let allow_rx = 1

let sub_tx_done = 1

let sub_rx_done = 2

type grant_state = { mutable pending_write : int (* 0 = none *) }

type t = {
  kernel : Kernel.t;
  vdev : Uart_mux.vdev;
  grant : grant_state Grant.t;
  mutable tx_owner : Process.id option;
  mutable wait_queue : Process.id list;
  mutable rx_owner : (Process.id * int) option;
  c_writes : Tock_obs.Metrics.counter;
  c_bytes : Tock_obs.Metrics.counter;
}

(* Enter this capsule's grant for a process known only by id (the id is
   what completion callbacks carry, as in Tock). *)
let enter_grant t pid f =
  match Kernel.find_process t.kernel pid with
  | Some p -> Grant.enter t.grant p f
  | None -> Result.Error Error.NODEVICE

let finish_failed_write t pid =
  ignore (enter_grant t pid (fun g -> g.pending_write <- 0));
  ignore
    (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
       ~subscribe_num:sub_tx_done ~args:(0, 0, 0))

(* Hand the process's allowed bytes to the UART mux in place: the
   transmit window is a clone of the allow window over process memory,
   so the write crosses the syscall boundary without a staging copy.
   [t.tx_owner] doubles as the busy token — one write in flight. *)
let start_write t pid len =
  match
    Kernel.allow_window t.kernel pid ~kind:`Ro ~driver:Driver_num.console
      ~allow_num:allow_tx
  with
  | None -> finish_failed_write t pid
  | Some w -> (
      let n = min len (Subslice.length w) in
      if n <= 0 then finish_failed_write t pid
      else begin
        Subslice.slice_to w n;
        t.tx_owner <- Some pid;
        match Uart_mux.transmit t.vdev w with
        | Ok () -> ()
        | Error (_e, _w) ->
            t.tx_owner <- None;
            finish_failed_write t pid
      end)

let create kernel vdev ~grant_cap =
  let grant =
    Grant.create ~cap:grant_cap ~name:"console" ~size_bytes:16 ~init:(fun () ->
        { pending_write = 0 })
  in
  let reg = Kernel.metrics kernel in
  let t =
    {
      kernel;
      vdev;
      grant;
      tx_owner = None;
      wait_queue = [];
      rx_owner = None;
      c_writes = Tock_obs.Metrics.counter reg "console.tx_writes";
      c_bytes = Tock_obs.Metrics.counter reg "console.tx_bytes";
    }
  in
  Kernel.register_grant kernel ~name:"console"
    ~preallocate:(fun p -> Grant.preallocate grant p)
    ~is_allocated:(fun p -> Grant.is_allocated grant p);
  Uart_mux.set_transmit_client vdev (fun sub ->
      let len = Subslice.length sub in
      (match t.tx_owner with
      | Some pid ->
          t.tx_owner <- None;
          Tock_obs.Metrics.incr t.c_writes;
          Tock_obs.Metrics.add t.c_bytes len;
          ignore (enter_grant t pid (fun g -> g.pending_write <- 0));
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
               ~subscribe_num:sub_tx_done ~args:(len, 0, 0))
      | None -> ());
      (* Serve the next queued writer. *)
      let rec next () =
        match t.wait_queue with
        | [] -> ()
        | pid :: rest -> (
            t.wait_queue <- rest;
            match enter_grant t pid (fun g -> g.pending_write) with
            | Ok n when n > 0 -> start_write t pid n
            | _ -> next ())
      in
      next ());
  Uart_mux.set_receive_client vdev (fun sub ->
      (* The bytes already landed in the process's allow window — the
         receive buffer IS that window, so delivery is just the upcall. *)
      match t.rx_owner with
      | Some (pid, wanted) ->
          t.rx_owner <- None;
          let delivered = min wanted (Subslice.length sub) in
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
               ~subscribe_num:sub_rx_done ~args:(delivered, 0, 0))
      | None -> ());
  t

let command t proc ~command_num ~arg1 ~arg2:_ =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 ->
      (* write arg1 bytes from the allowed tx buffer *)
      let len = min arg1 (Kernel.allow_size t.kernel pid ~kind:`Ro
                            ~driver:Driver_num.console ~allow_num:allow_tx)
      in
      if len <= 0 then Syscall.Failure Error.RESERVE
      else (
        match enter_grant t pid (fun g ->
                  if g.pending_write > 0 then false
                  else begin
                    g.pending_write <- len;
                    true
                  end)
        with
        | Ok true ->
            if t.tx_owner <> None then t.wait_queue <- t.wait_queue @ [ pid ]
            else start_write t pid len;
            Syscall.Success
        | Ok false -> Syscall.Failure Error.BUSY
        | Error e -> Syscall.Failure e)
  | 2 -> (
      (* read arg1 bytes straight into the allowed rx buffer *)
      if t.rx_owner <> None then Syscall.Failure Error.BUSY
      else
        match
          Kernel.allow_window t.kernel pid ~kind:`Rw ~driver:Driver_num.console
            ~allow_num:allow_rx
        with
        | None -> Syscall.Failure Error.RESERVE
        | Some w -> (
            let wanted = min arg1 (Subslice.length w) in
            if wanted <= 0 then Syscall.Failure Error.RESERVE
            else begin
              Subslice.slice_to w wanted;
              match Uart_mux.receive t.vdev w with
              | Ok () ->
                  t.rx_owner <- Some (pid, wanted);
                  Syscall.Success
              | Error (e, _w) -> Syscall.Failure e
            end))
  | 3 ->
      (match t.rx_owner with
      | Some (owner, _) when owner = pid ->
          Uart_mux.abort_receive t.vdev;
          t.rx_owner <- None
      | _ -> ());
      Syscall.Success
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.console ~name:"console"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)

let writes_completed t = Tock_obs.Metrics.counter_value t.c_writes

let bytes_written t = Tock_obs.Metrics.counter_value t.c_bytes
