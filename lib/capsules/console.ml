open Tock

let tx_buffer_size = 256

let allow_tx = 1

let allow_rx = 1

let sub_tx_done = 1

let sub_rx_done = 2

type grant_state = { mutable pending_write : int (* 0 = none *) }

type t = {
  kernel : Kernel.t;
  vdev : Uart_mux.vdev;
  grant : grant_state Grant.t;
  tx_cell : Subslice.t Cells.Take_cell.t;
  mutable tx_owner : Process.id option;
  mutable wait_queue : Process.id list;
  rx_cell : Subslice.t Cells.Take_cell.t;
  mutable rx_owner : (Process.id * int) option;
  mutable writes : int;
  mutable bytes : int;
}

(* Enter this capsule's grant for a process known only by id (the id is
   what completion callbacks carry, as in Tock). *)
let enter_grant t pid f =
  match Kernel.find_process t.kernel pid with
  | Some p -> Grant.enter t.grant p f
  | None -> Result.Error Error.NODEVICE

(* Copy the process's allowed buffer into the static transmit buffer and
   hand it to the UART mux. The caller guarantees the tx cell is full. *)
let start_write t pid len =
  match Cells.Take_cell.take t.tx_cell with
  | None -> ()
  | Some sub -> (
      Subslice.reset sub;
      let n = min len (Subslice.length sub) in
      let copied =
        Kernel.with_allow_ro t.kernel pid ~driver:Driver_num.console
          ~allow_num:allow_tx (fun app_buf ->
            let m = min n (Subslice.length app_buf) in
            Subslice.slice_to sub m;
            Subslice.copy_within app_buf sub;
            m)
      in
      match copied with
      | Ok m when m > 0 -> (
          t.tx_owner <- Some pid;
          match Uart_mux.transmit t.vdev sub with
          | Ok () -> ()
          | Error (_e, sub) ->
              Subslice.reset sub;
              Cells.Take_cell.put t.tx_cell sub;
              t.tx_owner <- None;
              ignore (enter_grant t pid (fun g -> g.pending_write <- 0));
              ignore
                (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
                   ~subscribe_num:sub_tx_done ~args:(0, 0, 0)))
      | _ ->
          Subslice.reset sub;
          Cells.Take_cell.put t.tx_cell sub;
          ignore (enter_grant t pid (fun g -> g.pending_write <- 0));
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
               ~subscribe_num:sub_tx_done ~args:(0, 0, 0)))

let create kernel vdev ~grant_cap =
  let grant =
    Grant.create ~cap:grant_cap ~name:"console" ~size_bytes:16 ~init:(fun () ->
        { pending_write = 0 })
  in
  let t =
    {
      kernel;
      vdev;
      grant;
      tx_cell = Cells.Take_cell.make (Subslice.create tx_buffer_size);
      tx_owner = None;
      wait_queue = [];
      rx_cell = Cells.Take_cell.make (Subslice.create 64);
      rx_owner = None;
      writes = 0;
      bytes = 0;
    }
  in
  Uart_mux.set_transmit_client vdev (fun sub ->
      let len = Subslice.length sub in
      Subslice.reset sub;
      Cells.Take_cell.put t.tx_cell sub;
      (match t.tx_owner with
      | Some pid ->
          t.tx_owner <- None;
          t.writes <- t.writes + 1;
          t.bytes <- t.bytes + len;
          ignore (enter_grant t pid (fun g -> g.pending_write <- 0));
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
               ~subscribe_num:sub_tx_done ~args:(len, 0, 0))
      | None -> ());
      (* Serve the next queued writer. *)
      let rec next () =
        match t.wait_queue with
        | [] -> ()
        | pid :: rest -> (
            t.wait_queue <- rest;
            match enter_grant t pid (fun g -> g.pending_write) with
            | Ok n when n > 0 -> start_write t pid n
            | _ -> next ())
      in
      next ());
  Uart_mux.set_receive_client vdev (fun sub ->
      (match t.rx_owner with
      | Some (pid, wanted) ->
          t.rx_owner <- None;
          let got = min wanted (Subslice.length sub) in
          let res =
            Kernel.with_allow_rw t.kernel pid ~driver:Driver_num.console
              ~allow_num:allow_rx (fun app_buf ->
                let m = min got (Subslice.length app_buf) in
                Subslice.blit ~src:sub ~src_off:0 ~dst:app_buf ~dst_off:0
                  ~len:m;
                m)
          in
          let delivered = match res with Ok m -> m | Error _ -> 0 in
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.console
               ~subscribe_num:sub_rx_done ~args:(delivered, 0, 0))
      | None -> ());
      Subslice.reset sub;
      Cells.Take_cell.put t.rx_cell sub);
  t

let command t proc ~command_num ~arg1 ~arg2:_ =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 ->
      (* write arg1 bytes from the allowed tx buffer *)
      let len = min arg1 (Kernel.allow_size t.kernel pid ~kind:`Ro
                            ~driver:Driver_num.console ~allow_num:allow_tx)
      in
      if len <= 0 then Syscall.Failure Error.RESERVE
      else (
        match enter_grant t pid (fun g ->
                  if g.pending_write > 0 then false
                  else begin
                    g.pending_write <- len;
                    true
                  end)
        with
        | Ok true ->
            if Cells.Take_cell.is_none t.tx_cell then
              t.wait_queue <- t.wait_queue @ [ pid ]
            else start_write t pid len;
            Syscall.Success
        | Ok false -> Syscall.Failure Error.BUSY
        | Error e -> Syscall.Failure e)
  | 2 -> (
      (* read arg1 bytes *)
      if t.rx_owner <> None then Syscall.Failure Error.BUSY
      else
        let wanted =
          min arg1 (Kernel.allow_size t.kernel pid ~kind:`Rw
                      ~driver:Driver_num.console ~allow_num:allow_rx)
        in
        if wanted <= 0 then Syscall.Failure Error.RESERVE
        else
          match Cells.Take_cell.take t.rx_cell with
          | None -> Syscall.Failure Error.BUSY
          | Some sub -> (
              Subslice.reset sub;
              Subslice.slice_to sub (min wanted (Subslice.length sub));
              match Uart_mux.receive t.vdev sub with
              | Ok () ->
                  t.rx_owner <- Some (pid, wanted);
                  Syscall.Success
              | Error (e, sub) ->
                  Subslice.reset sub;
                  Cells.Take_cell.put t.rx_cell sub;
                  Syscall.Failure e))
  | 3 ->
      (match t.rx_owner with
      | Some (owner, _) when owner = pid ->
          Uart_mux.abort_receive t.vdev;
          t.rx_owner <- None
      | _ -> ());
      Syscall.Success
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.console ~name:"console"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)

let writes_completed t = t.writes

let bytes_written t = t.bytes
