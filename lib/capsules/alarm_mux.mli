(** Timer virtualization: many virtual alarms over one hardware alarm.

    The paper names timer virtualization as one of the two subsystems
    where "numerous subtle logic bugs" survived Rust's type system
    (§5.4): the difficulty is entirely in the wrapping 32-bit arithmetic —
    deciding which alarms have expired relative to a moving reference and
    choosing the next hardware compare value without skipping a deadline
    that lands mid-processing.

    The implementation follows Tock's [MuxAlarm]/[VirtualMuxAlarm]:
    clients set alarms as (reference, dt) pairs in tick space; on each
    hardware fire the mux sweeps expired virtual alarms, invokes their
    clients (which may re-arm during the callback), then programs the
    hardware with the earliest remaining deadline. The property-based
    tests drive it across wrap boundaries. *)

type t

type valarm

val create : ?obs:Tock_obs.Ctx.t -> Tock.Hil.alarm -> t
(** Claims the hardware alarm's client slot. [obs] (typically the owning
    kernel's {!Tock.Kernel.obs}) receives an [alarm_mux.fired] counter
    and per-sweep [Alarm_fire] trace instants; defaults to
    {!Tock_obs.Ctx.disabled}. *)

val new_alarm : t -> valarm

val set_client : valarm -> (unit -> unit) -> unit

val now : valarm -> int

val frequency_hz : valarm -> int

val set_alarm : valarm -> reference:int -> dt:int -> unit
(** Tock semantics: fire when [now - reference >= dt] (wrapping). An
    already-expired alarm fires on the next mux pass. *)

val set_relative : valarm -> dt:int -> unit
(** [set_alarm ~reference:(now) ~dt]. *)

val cancel : valarm -> unit

val is_armed : valarm -> bool

val alarm_params : valarm -> int * int
(** The (reference, dt) the alarm was last set with. Only meaningful
    while {!is_armed}; a disarmed alarm retains stale values, which is
    why board freeze ({!Tock.Kernel.freeze}) elides them. *)

val iter_alarms : t -> (valarm -> unit) -> unit
(** Iterate virtual alarms in the mux's internal client order — the
    order fire sweeps visit them, which freeze must witness because
    simultaneous expiries invoke clients in exactly this order. *)

val armed_count : t -> int

val fired_total : t -> int
(** Virtual alarm client invocations since creation (stats). *)
