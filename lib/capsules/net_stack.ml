open Tock

let magic0 = 'T'

let magic1 = 'K'

let header_size = 9

let trailer_size = 2

let max_payload = 100


let flag_ack = 0x01

let flag_needs_ack = 0x02

let flag_fragment = 0x04

let frag_header = 4

let frag_chunk = max_payload - frag_header

let max_fragments = 8

(* CRC-16/CCITT-FALSE, shared with the rest of the system through the
   kernel's {!Crc16} re-export so the bitwise oracle lives in exactly one
   place. The link fast path folds the checksum window-by-window over the
   scatter-gather frame ({!Crc16.update_sub}); these whole-buffer entry
   points remain for tests and the copying reference path. *)
let crc16 = Crc16.digest

let crc16_ref = Crc16.Reference.digest

type inflight = {
  if_dest : int;
  if_seq : int;
  if_iov : Subslice.t array;
  mutable tries : int;
  if_done : (unit, Error.t) result -> unit;
}

(* In-place reassembly: one arena sized for the whole datagram, a
   received bitmap, and the last fragment's length (every other fragment
   is exactly [frag_chunk] bytes). Each fragment costs one blit from the
   received frame into its slot — no per-fragment allocation, no final
   concatenation pass. *)
type reasm = {
  arena : bytes;
  received : bool array;
  mutable last_len : int;
}

type t = {
  kernel : Kernel.t;
  radio : Hil.radio;
  valarm : Alarm_mux.valarm;
  ack_timeout : int;
  max_retries : int;
  (* Scatter-gather staging: the data frame on the air is the iovec
     [hdr; (fhdr;) payload-window; trl] — only the few header/trailer
     bytes are written by the stack, the payload rides in place. Acks
     stage separately so an ack composed between retransmissions cannot
     corrupt the retransmitted frame. *)
  hdr : Subslice.t;
  fhdr : Subslice.t;
  trl : Subslice.t;
  ack_hdr : Subslice.t;
  ack_trl : Subslice.t;
  (* who owns the transmit currently in the air *)
  mutable current_tx : [ `None | `Net | `Ack | `Raw | `Raw_iov ];
  mutable raw_tx_client : Subslice.t -> unit;
  mutable raw_tx_iov_client : Subslice.t array -> unit;
  mutable next_seq : int;
  mutable inflight : inflight option;
  mutable rx_client : (src:int -> bytes -> unit) option;
  mutable raw_rx_client : src:int -> bytes -> unit;
  (* duplicate suppression: last seq seen per source *)
  last_seq : (int, int) Hashtbl.t;
  mutable retx : int;
  mutable dups : int;
  mutable crc_fail : int;
  mutable acks : int;
  (* userspace listeners *)
  mutable listeners : Process.id list;
  mutable tx_owner : Process.id option;
  mutable next_dgram_id : int;
  (* reassembly: (src, dgram_id) -> arena *)
  reassembly : (int * int, reasm) Hashtbl.t;
  mutable reassembled : int;
  c_tx_frames : Tock_obs.Metrics.counter;
  c_rx_frames : Tock_obs.Metrics.counter;
  c_retries : Tock_obs.Metrics.counter;
}

let fill_header w ~seq ~flags ~src ~dst ~plen =
  Subslice.set w 0 magic0;
  Subslice.set w 1 magic1;
  Subslice.set_u8 w 2 (seq land 0xff);
  Subslice.set_u8 w 3 (flags land 0xff);
  Subslice.set_u8 w 4 (src land 0xff);
  Subslice.set_u8 w 5 ((src lsr 8) land 0xff);
  Subslice.set_u8 w 6 (dst land 0xff);
  Subslice.set_u8 w 7 ((dst lsr 8) land 0xff);
  Subslice.set_u8 w 8 plen

(* Compose a frame as an iovec over the staging windows and the caller's
   payload window. The payload bytes are never touched: the checksum is
   folded over the windows in place and the radio's DMA gather serializes
   the segments into its air latch. *)
let compose ?fhdr ~hdr ~trl ~seq ~flags ~src ~dst payload_w =
  let plen =
    (match fhdr with Some f -> Subslice.length f | None -> 0)
    + Subslice.length payload_w
  in
  fill_header hdr ~seq ~flags ~src ~dst ~plen;
  let crc = Crc16.update_sub Crc16.init hdr in
  let crc = match fhdr with Some f -> Crc16.update_sub crc f | None -> crc in
  let crc = Crc16.update_sub crc payload_w in
  Subslice.set_u8 trl 0 (crc land 0xff);
  Subslice.set_u8 trl 1 ((crc lsr 8) land 0xff);
  match fhdr with
  | Some f -> [| hdr; f; payload_w; trl |]
  | None -> [| hdr; payload_w; trl |]

let transmit_iov t tag iov =
  if t.current_tx <> `None then Error Error.BUSY
  else
    (* the link destination is broadcast: filtering happens on our
       header, so acks and dedup see every frame *)
    match t.radio.Hil.radio_transmit_iov ~dest:0xFFFF iov with
    | Ok () ->
        t.current_tx <- tag;
        Tock_obs.Metrics.incr t.c_tx_frames;
        Ok ()
    | Error (e, _) -> Error e

let finish_inflight t result =
  match t.inflight with
  | None -> ()
  | Some inf ->
      t.inflight <- None;
      Alarm_mux.cancel t.valarm;
      inf.if_done result

let rec retransmit t =
  match t.inflight with
  | None -> ()
  | Some inf ->
      if inf.tries > t.max_retries then finish_inflight t (Error Error.NOACK)
      else begin
        t.retx <- t.retx + 1;
        Tock_obs.Metrics.incr t.c_retries;
        inf.tries <- inf.tries + 1;
        (* The staging windows still hold this frame: acks stage apart,
           and a new send is refused while we are inflight. *)
        (match transmit_iov t `Net inf.if_iov with
        | Ok () -> ()
        | Error _ -> () (* radio mid-frame; the timer fires us again *));
        arm_timer t
      end

and arm_timer t =
  Alarm_mux.set_client t.valarm (fun () -> retransmit t);
  Alarm_mux.set_relative t.valarm ~dt:t.ack_timeout

let send_single t ~dest ~extra_flags ?fhdr payload_w ~on_result =
  if t.inflight <> None then Error Error.BUSY
  else begin
    let seq = t.next_seq in
    t.next_seq <- (t.next_seq + 1) land 0xff;
    let needs_ack = dest <> 0xFFFF in
    let flags = (if needs_ack then flag_needs_ack else 0) lor extra_flags in
    let iov =
      compose ?fhdr ~hdr:t.hdr ~trl:t.trl ~seq ~flags
        ~src:t.radio.Hil.radio_addr ~dst:dest payload_w
    in
    match transmit_iov t `Net iov with
    | Error e -> Error e
    | Ok () ->
        if needs_ack then begin
          t.inflight <-
            Some { if_dest = dest; if_seq = seq; if_iov = iov; tries = 1;
                   if_done = on_result };
          arm_timer t
        end
        else on_result (Ok ());
        Ok ()
  end

let send_sub t ~dest payload ~on_result =
  let total_len = Subslice.length payload in
  if total_len <= max_payload then
    send_single t ~dest ~extra_flags:0 payload ~on_result
  else if dest = 0xFFFF then Error Error.SIZE
    (* large broadcasts have no ack to pace fragments; unsupported *)
  else
    let nfrags = (total_len + frag_chunk - 1) / frag_chunk in
    if nfrags > max_fragments then Error Error.SIZE
    else begin
      let dgram_id = t.next_dgram_id in
      t.next_dgram_id <- (t.next_dgram_id + 1) land 0xff;
      (* Each fragment is a fresh narrowing of the same underlying
         window: clone shares the bytes, so fragmentation allocates two
         words per fragment and copies nothing. *)
      let frag_window idx =
        let off = idx * frag_chunk in
        let n = min frag_chunk (total_len - off) in
        let pw = Subslice.clone payload in
        Subslice.slice pw ~pos:off ~len:n;
        pw
      in
      let fill_fhdr idx =
        Subslice.set_u8 t.fhdr 0 dgram_id;
        Subslice.set_u8 t.fhdr 1 idx;
        Subslice.set_u8 t.fhdr 2 nfrags;
        Subslice.set_u8 t.fhdr 3 0
      in
      (* Each fragment is acked before the next departs. *)
      let rec send_frag idx =
        fill_fhdr idx;
        send_single t ~dest ~extra_flags:flag_fragment ~fhdr:t.fhdr
          (frag_window idx)
          ~on_result:(fun result ->
            match result with
            | Error _ as e -> on_result e
            | Ok () ->
                if idx + 1 < nfrags then (
                  match send_frag (idx + 1) with
                  | Ok () -> ()
                  | Error e -> on_result (Error e))
                else on_result (Ok ()))
      in
      send_frag 0
    end

let send t ~dest payload ~on_result =
  send_sub t ~dest (Subslice.of_bytes payload) ~on_result

let send_ack t ~dest ~seq =
  t.acks <- t.acks + 1;
  fill_header t.ack_hdr ~seq ~flags:flag_ack ~src:t.radio.Hil.radio_addr
    ~dst:dest ~plen:0;
  let crc = Crc16.update_sub Crc16.init t.ack_hdr in
  Subslice.set_u8 t.ack_trl 0 (crc land 0xff);
  Subslice.set_u8 t.ack_trl 1 ((crc lsr 8) land 0xff);
  ignore (transmit_iov t `Ack [| t.ack_hdr; t.ack_trl |])

(* Parse a received frame in place: validation walks the delivered bytes
   and the payload is returned as a window over them — no [Bytes.sub]. *)
let handle_frame t ~src:_ frame =
  let len = Bytes.length frame in
  if len < 2 || Bytes.get frame 0 <> magic0 || Bytes.get frame 1 <> magic1 then
    (* not ours: raw passthrough *)
    `Raw
  else if len < header_size + trailer_size then begin
    t.crc_fail <- t.crc_fail + 1;
    `Dropped
  end
  else begin
    let plen = Char.code (Bytes.get frame 8) in
    if len < header_size + plen + trailer_size then begin
      t.crc_fail <- t.crc_fail + 1;
      `Dropped
    end
    else begin
      let crc_stored =
        Char.code (Bytes.get frame (header_size + plen))
        lor (Char.code (Bytes.get frame (header_size + plen + 1)) lsl 8)
      in
      if
        Crc16.update_fast Crc16.init frame ~off:0 ~len:(header_size + plen)
        <> crc_stored
      then begin
        t.crc_fail <- t.crc_fail + 1;
        `Dropped
      end
      else begin
        let seq = Char.code (Bytes.get frame 2) in
        let flags = Char.code (Bytes.get frame 3) in
        let fsrc =
          Char.code (Bytes.get frame 4) lor (Char.code (Bytes.get frame 5) lsl 8)
        in
        let fdst =
          Char.code (Bytes.get frame 6) lor (Char.code (Bytes.get frame 7) lsl 8)
        in
        let us = t.radio.Hil.radio_addr in
        if fdst <> us && fdst <> 0xFFFF then `Dropped
        else if flags land flag_ack <> 0 then begin
          (match t.inflight with
          | Some inf when inf.if_seq = seq && inf.if_dest = fsrc ->
              finish_inflight t (Ok ())
          | _ -> ());
          `Dropped
        end
        else begin
          if flags land flag_needs_ack <> 0 then send_ack t ~dest:fsrc ~seq;
          (* duplicate? (retransmits after a lost ack) *)
          match Hashtbl.find_opt t.last_seq fsrc with
          | Some s when s = seq ->
              t.dups <- t.dups + 1;
              `Dropped
          | _ ->
              Hashtbl.replace t.last_seq fsrc seq;
              let body =
                Subslice.of_bytes_window frame ~pos:header_size ~len:plen
              in
              if flags land flag_fragment <> 0 then `Fragment (fsrc, body)
              else `Datagram (fsrc, body)
        end
      end
    end
  end

(* ---- construction ---- *)

let allow_tx = 0

let allow_rx = 0

let sub_tx_done = 0

let sub_rx = 1

let driver_num = 0x30002

let deliver_to_listeners t ~src payload =
  List.iter
    (fun pid ->
      let copied =
        Kernel.with_allow_rw t.kernel pid ~driver:driver_num
          ~allow_num:allow_rx (fun buf ->
            let n = min (Subslice.length payload) (Subslice.length buf) in
            if n > 0 then
              Subslice.blit ~src:payload ~src_off:0 ~dst:buf ~dst_off:0 ~len:n;
            n)
      in
      let n = match copied with Ok n -> n | Error _ -> 0 in
      ignore
        (Kernel.schedule_upcall t.kernel pid ~driver:driver_num
           ~subscribe_num:sub_rx ~args:(src, n, 0)))
    t.listeners

(* Hand a complete datagram up: the single counted copy on the receive
   path is the blit into each listener's allow window. The kernel-side
   test client still gets owned bytes. *)
let deliver_up t ~src payload =
  (match t.rx_client with
  | Some fn -> fn ~src (Subslice.to_bytes payload)
  | None -> ());
  deliver_to_listeners t ~src payload

let create ?(max_retries = 3) kernel radio amux ~ack_timeout_ticks =
  let reg = Kernel.metrics kernel in
  let t =
    {
      kernel;
      radio;
      valarm = Alarm_mux.new_alarm amux;
      ack_timeout = ack_timeout_ticks;
      max_retries;
      hdr = Subslice.create header_size;
      fhdr = Subslice.create frag_header;
      trl = Subslice.create trailer_size;
      ack_hdr = Subslice.create header_size;
      ack_trl = Subslice.create trailer_size;
      current_tx = `None;
      raw_tx_client = (fun (_ : Subslice.t) -> ());
      raw_tx_iov_client = (fun (_ : Subslice.t array) -> ());
      next_seq = 1;
      inflight = None;
      rx_client = None;
      raw_rx_client = (fun ~src:_ _ -> ());
      last_seq = Hashtbl.create 8;
      retx = 0;
      dups = 0;
      crc_fail = 0;
      acks = 0;
      listeners = [];
      tx_owner = None;
      next_dgram_id = 1;
      reassembly = Hashtbl.create 8;
      reassembled = 0;
      c_tx_frames = Tock_obs.Metrics.counter reg "net.tx_frames";
      c_rx_frames = Tock_obs.Metrics.counter reg "net.rx_frames";
      c_retries = Tock_obs.Metrics.counter reg "net.retries";
    }
  in
  radio.Hil.radio_set_transmit_client (fun sub ->
      match t.current_tx with
      | `Raw ->
          t.current_tx <- `None;
          t.raw_tx_client sub
      | _ -> t.current_tx <- `None);
  radio.Hil.radio_set_transmit_iov_client (fun iov ->
      match t.current_tx with
      | `Raw_iov ->
          t.current_tx <- `None;
          t.raw_tx_iov_client iov
      | _ ->
          (* our own frame: the hardware latched the bytes at start, so
             the staging windows were already free — nothing to recycle *)
          t.current_tx <- `None);
  radio.Hil.radio_set_receive_client (fun ~src frame ->
      Tock_obs.Metrics.incr t.c_rx_frames;
      match handle_frame t ~src frame with
      | `Raw -> t.raw_rx_client ~src frame
      | `Dropped -> ()
      | `Datagram (fsrc, body) -> deliver_up t ~src:fsrc body
      | `Fragment (fsrc, body) ->
          if Subslice.length body >= frag_header then begin
            let dgram_id = Subslice.get_u8 body 0 in
            let idx = Subslice.get_u8 body 1 in
            let total = Subslice.get_u8 body 2 in
            let clen = Subslice.length body - frag_header in
            let len_ok =
              if idx = total - 1 then clen <= frag_chunk
              else clen = frag_chunk
            in
            if total >= 1 && total <= max_fragments && idx < total && len_ok
            then begin
              let key = (fsrc, dgram_id) in
              let r =
                match Hashtbl.find_opt t.reassembly key with
                | Some r when Array.length r.received = total -> r
                | _ ->
                    let r =
                      {
                        arena = Bytes.create (total * frag_chunk);
                        received = Array.make total false;
                        last_len = 0;
                      }
                    in
                    Hashtbl.replace t.reassembly key r;
                    r
              in
              Subslice.blit_to_bytes body ~src_off:frag_header ~dst:r.arena
                ~dst_off:(idx * frag_chunk) ~len:clen;
              r.received.(idx) <- true;
              if idx = total - 1 then r.last_len <- clen;
              if Array.for_all Fun.id r.received then begin
                Hashtbl.remove t.reassembly key;
                t.reassembled <- t.reassembled + 1;
                let total_len = ((total - 1) * frag_chunk) + r.last_len in
                let whole =
                  Subslice.of_bytes_window r.arena ~pos:0 ~len:total_len
                in
                deliver_up t ~src:fsrc whole
              end
            end
          end);
  t

let set_receive t fn = t.rx_client <- Some fn

let set_raw_receive t fn = t.raw_rx_client <- fn

(* A raw pass-through view: plain (non-'TK') frames share the radio with
   the reliable layer. Transmissions interleave at frame granularity. *)
let raw_radio t : Hil.radio =
  {
    Hil.radio_transmit =
      (fun ~dest sub ->
        if t.current_tx <> `None then Error (Error.BUSY, sub)
        else
          match t.radio.Hil.radio_transmit ~dest sub with
          | Ok () ->
              t.current_tx <- `Raw;
              Ok ()
          | Error _ as e -> e);
    radio_set_transmit_client = (fun fn -> t.raw_tx_client <- fn);
    radio_transmit_iov =
      (fun ~dest iov ->
        if t.current_tx <> `None then Error (Error.BUSY, iov)
        else
          match t.radio.Hil.radio_transmit_iov ~dest iov with
          | Ok () ->
              t.current_tx <- `Raw_iov;
              Ok ()
          | Error _ as e -> e);
    radio_set_transmit_iov_client = (fun fn -> t.raw_tx_iov_client <- fn);
    radio_set_receive_client = (fun fn -> t.raw_rx_client <- (fun ~src b -> fn ~src b));
    radio_start_listening = (fun () -> t.radio.Hil.radio_start_listening ());
    radio_stop = (fun () -> t.radio.Hil.radio_stop ());
    radio_addr = t.radio.Hil.radio_addr;
  }

let start t = t.radio.Hil.radio_start_listening ()

let retransmissions t = t.retx

let duplicates_dropped t = t.dups

let crc_failures t = t.crc_fail

let acks_sent t = t.acks

let datagrams_reassembled t = t.reassembled

(* ---- syscall driver ---- *)

let command t proc ~command_num ~arg1 ~arg2 =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      if t.tx_owner <> None then Syscall.Failure Error.BUSY
      else
        match
          Kernel.allow_window t.kernel pid ~kind:`Ro ~driver:driver_num
            ~allow_num:allow_tx
        with
        | None -> Syscall.Failure Error.RESERVE
        | Some w ->
            let n = min arg2 (Subslice.length w) in
            if n = 0 then Syscall.Failure Error.RESERVE
            else begin
              Subslice.slice_to w n;
              match
                send_sub t ~dest:arg1 w ~on_result:(fun r ->
                    t.tx_owner <- None;
                    let status, retries =
                      match r with
                      | Ok () -> (0, 0)
                      | Error e -> (-Error.to_int e, t.max_retries)
                    in
                    ignore
                      (Kernel.schedule_upcall t.kernel pid ~driver:driver_num
                         ~subscribe_num:sub_tx_done ~args:(status, retries, 0)))
              with
              | Ok () ->
                  t.tx_owner <- Some pid;
                  Syscall.Success
              | Error e -> Syscall.Failure e
            end)
  | 2 ->
      start t;
      if not (List.mem pid t.listeners) then t.listeners <- pid :: t.listeners;
      Syscall.Success
  | 3 ->
      t.listeners <- List.filter (fun p -> p <> pid) t.listeners;
      Syscall.Success
  | 4 -> Syscall.Success_u32 t.radio.Hil.radio_addr
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num ~name:"net"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)

(* ---- single-frame round-trip oracles (tests and benchmarks) ----

   Two self-contained compose→wire→parse→deliver pipelines over the same
   frame format. [Reference] reproduces the pre-zero-copy chain — copy
   out of the sender's window, build an owned frame, blit it into a
   127-byte staging buffer, parse, cut the body out, blit it into the
   receiver's buffer — with the byte-at-a-time table CRC it used.
   [round_trip] is the current path: iovec compose with the incremental
   CRC, one hardware gather, in-place parse, one delivery blit. The
   property tests assert the two produce identical bytes; the iopath
   benchmark measures the gap. *)

module Reference = struct
  let build_frame ~seq ~flags ~src ~dst payload =
    let plen = Bytes.length payload in
    let f = Bytes.create (header_size + plen + trailer_size) in
    Bytes.set f 0 magic0;
    Bytes.set f 1 magic1;
    Bytes.set f 2 (Char.chr (seq land 0xff));
    Bytes.set f 3 (Char.chr (flags land 0xff));
    Bytes.set f 4 (Char.chr (src land 0xff));
    Bytes.set f 5 (Char.chr ((src lsr 8) land 0xff));
    Bytes.set f 6 (Char.chr (dst land 0xff));
    Bytes.set f 7 (Char.chr ((dst lsr 8) land 0xff));
    Bytes.set f 8 (Char.chr plen);
    Bytes.blit payload 0 f header_size plen;
    let crc = crc16 f ~off:0 ~len:(header_size + plen) in
    Bytes.set f (header_size + plen) (Char.chr (crc land 0xff));
    Bytes.set f (header_size + plen + 1) (Char.chr ((crc lsr 8) land 0xff));
    f

  let parse_frame frame =
    let len = Bytes.length frame in
    if len < header_size + trailer_size then None
    else if Bytes.get frame 0 <> magic0 || Bytes.get frame 1 <> magic1 then None
    else
      let plen = Char.code (Bytes.get frame 8) in
      if len < header_size + plen + trailer_size then None
      else
        let crc_stored =
          Char.code (Bytes.get frame (header_size + plen))
          lor (Char.code (Bytes.get frame (header_size + plen + 1)) lsl 8)
        in
        if crc16 frame ~off:0 ~len:(header_size + plen) <> crc_stored then None
        else
          let src =
            Char.code (Bytes.get frame 4)
            lor (Char.code (Bytes.get frame 5) lsl 8)
          in
          (* otock-lint: allow capsule-byte-copy — the Reference module IS
             the copying baseline the iopath bench measures against *)
          Some (src, Bytes.sub frame header_size plen)

  let latch = Bytes.create 127

  let round_trip ~src ~dst payload out =
    (* the app's copy-out of its allowed buffer *)
    (* otock-lint: allow capsule-byte-copy — deliberate: this models the
       pre-zero-copy path for the benchmark comparison *)
    let owned = Bytes.sub payload 0 (Bytes.length payload) in
    let frame = build_frame ~seq:1 ~flags:0 ~src ~dst owned in
    let flen = Bytes.length frame in
    (* the staging blit the old transmit path performed *)
    Bytes.blit frame 0 latch 0 flen;
    (* otock-lint: allow capsule-byte-copy — deliberate: the copying
       receive path of the baseline under measurement *)
    match parse_frame (Bytes.sub latch 0 flen) with
    | None -> 0
    | Some (_, body) ->
        let n = min (Bytes.length body) (Bytes.length out) in
        Bytes.blit body 0 out 0 n;
        n
end

let rt_hdr = Subslice.create header_size

let rt_trl = Subslice.create trailer_size

let rt_latch = Bytes.create 127

let round_trip ~src ~dst payload_w out_w =
  let iov =
    compose ~hdr:rt_hdr ~trl:rt_trl ~seq:1 ~flags:0 ~src ~dst payload_w
  in
  (* the hardware's DMA gather into its air latch *)
  let flen =
    Array.fold_left
      (fun pos w ->
        let off, len = Subslice.window w in
        (* otock-lint: allow subslice-escape — this fold models the radio's
           DMA gather; the bytes go straight into the air latch *)
        Bytes.blit (Subslice.underlying w) off rt_latch pos len;
        pos + len)
      0 iov
  in
  (* in-place parse over the latch *)
  if flen < header_size + trailer_size then 0
  else
    let plen = Char.code (Bytes.get rt_latch 8) in
    if flen < header_size + plen + trailer_size then 0
    else
      let crc_stored =
        Char.code (Bytes.get rt_latch (header_size + plen))
        lor (Char.code (Bytes.get rt_latch (header_size + plen + 1)) lsl 8)
      in
      if
        Crc16.update_fast Crc16.init rt_latch ~off:0 ~len:(header_size + plen)
        <> crc_stored
      then 0
      else begin
        let body =
          Subslice.of_bytes_window rt_latch ~pos:header_size ~len:plen
        in
        let n = min plen (Subslice.length out_w) in
        if n > 0 then
          Subslice.blit ~src:body ~src_off:0 ~dst:out_w ~dst_off:0 ~len:n;
        n
      end
