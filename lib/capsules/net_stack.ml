open Tock

let magic0 = 'T'

let magic1 = 'K'

let header_size = 9

let trailer_size = 2

let max_payload = 100


let flag_ack = 0x01

let flag_needs_ack = 0x02

let flag_fragment = 0x04

let frag_header = 4

let frag_chunk = max_payload - frag_header

let max_fragments = 8

(* CRC-16/CCITT-FALSE. The bitwise version is the oracle; every frame on
   the wire is checksummed twice (send and receive), so the real
   computation runs byte-at-a-time over a 256-entry table derived from it
   at module init. *)
let crc16_ref b ~off ~len =
  let crc = ref 0xFFFF in
  for i = off to off + len - 1 do
    crc := !crc lxor (Char.code (Bytes.get b i) lsl 8);
    for _ = 1 to 8 do
      if !crc land 0x8000 <> 0 then crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
      else crc := (!crc lsl 1) land 0xFFFF
    done
  done;
  !crc

let crc16_table =
  Array.init 256 (fun byte ->
      let crc = ref (byte lsl 8) in
      for _ = 1 to 8 do
        if !crc land 0x8000 <> 0 then
          crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
        else crc := (!crc lsl 1) land 0xFFFF
      done;
      !crc)

let crc16 b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Net_stack.crc16";
  let crc = ref 0xFFFF in
  for i = off to off + len - 1 do
    let idx = (!crc lsr 8) lxor Char.code (Bytes.unsafe_get b i) in
    crc := ((!crc lsl 8) lxor Array.unsafe_get crc16_table idx) land 0xFFFF
  done;
  !crc

type inflight = {
  if_dest : int;
  if_seq : int;
  if_frame : bytes;
  mutable tries : int;
  if_done : (unit, Error.t) result -> unit;
}

type t = {
  kernel : Kernel.t;
  radio : Hil.radio;
  valarm : Alarm_mux.valarm;
  ack_timeout : int;
  max_retries : int;
  tx_buf : Subslice.t Cells.Take_cell.t;
  (* who owns the transmit currently in the air *)
  mutable current_tx : [ `None | `Net | `Raw of Subslice.t ];
  mutable raw_tx_client : Subslice.t -> unit;
  mutable next_seq : int;
  mutable inflight : inflight option;
  mutable rx_client : src:int -> bytes -> unit;
  mutable raw_rx_client : src:int -> bytes -> unit;
  (* duplicate suppression: last seq seen per source *)
  last_seq : (int, int) Hashtbl.t;
  mutable retx : int;
  mutable dups : int;
  mutable crc_fail : int;
  mutable acks : int;
  (* userspace listeners *)
  mutable listeners : Process.id list;
  mutable tx_owner : Process.id option;
  mutable next_dgram_id : int;
  (* reassembly: (src, dgram_id) -> per-index chunks *)
  reassembly : (int * int, bytes option array) Hashtbl.t;
  mutable reassembled : int;
}

let build_frame ~seq ~flags ~src ~dst payload =
  let plen = Bytes.length payload in
  let f = Bytes.create (header_size + plen + trailer_size) in
  Bytes.set f 0 magic0;
  Bytes.set f 1 magic1;
  Bytes.set f 2 (Char.chr (seq land 0xff));
  Bytes.set f 3 (Char.chr (flags land 0xff));
  Bytes.set f 4 (Char.chr (src land 0xff));
  Bytes.set f 5 (Char.chr ((src lsr 8) land 0xff));
  Bytes.set f 6 (Char.chr (dst land 0xff));
  Bytes.set f 7 (Char.chr ((dst lsr 8) land 0xff));
  Bytes.set f 8 (Char.chr plen);
  Bytes.blit payload 0 f header_size plen;
  let crc = crc16 f ~off:0 ~len:(header_size + plen) in
  Bytes.set f (header_size + plen) (Char.chr (crc land 0xff));
  Bytes.set f (header_size + plen + 1) (Char.chr ((crc lsr 8) land 0xff));
  f

let transmit_frame t frame =
  match Cells.Take_cell.take t.tx_buf with
  | None -> Error Error.BUSY
  | Some sub -> (
      Subslice.reset sub;
      let n = Bytes.length frame in
      Subslice.blit_from_bytes ~src:frame ~src_off:0 sub ~dst_off:0 ~len:n;
      Subslice.slice_to sub n;
      (* the link destination is broadcast: filtering happens on our
         header, so acks and dedup see every frame *)
      match t.radio.Hil.radio_transmit ~dest:0xFFFF sub with
      | Ok () ->
          t.current_tx <- `Net;
          Ok ()
      | Error (e, sub) ->
          Subslice.reset sub;
          Cells.Take_cell.put t.tx_buf sub;
          Error e)

let finish_inflight t result =
  match t.inflight with
  | None -> ()
  | Some inf ->
      t.inflight <- None;
      Alarm_mux.cancel t.valarm;
      inf.if_done result

let rec retransmit t =
  match t.inflight with
  | None -> ()
  | Some inf ->
      if inf.tries > t.max_retries then finish_inflight t (Error Error.NOACK)
      else begin
        t.retx <- t.retx + 1;
        inf.tries <- inf.tries + 1;
        (match transmit_frame t inf.if_frame with
        | Ok () -> ()
        | Error _ -> () (* radio mid-frame; the timer fires us again *));
        arm_timer t
      end

and arm_timer t =
  Alarm_mux.set_client t.valarm (fun () -> retransmit t);
  Alarm_mux.set_relative t.valarm ~dt:t.ack_timeout

let send_single t ~dest ~extra_flags payload ~on_result =
  if t.inflight <> None then Error Error.BUSY
  else begin
    let seq = t.next_seq in
    t.next_seq <- (t.next_seq + 1) land 0xff;
    let needs_ack = dest <> 0xFFFF in
    let flags = (if needs_ack then flag_needs_ack else 0) lor extra_flags in
    let frame =
      build_frame ~seq ~flags ~src:t.radio.Hil.radio_addr ~dst:dest payload
    in
    match transmit_frame t frame with
    | Error e -> Error e
    | Ok () ->
        if needs_ack then begin
          t.inflight <-
            Some { if_dest = dest; if_seq = seq; if_frame = frame; tries = 1;
                   if_done = on_result };
          arm_timer t
        end
        else on_result (Ok ());
        Ok ()
  end

let send t ~dest payload ~on_result =
  let total_len = Bytes.length payload in
  if total_len <= max_payload then
    send_single t ~dest ~extra_flags:0 payload ~on_result
  else if dest = 0xFFFF then Error Error.SIZE
    (* large broadcasts have no ack to pace fragments; unsupported *)
  else
    let nfrags = (total_len + frag_chunk - 1) / frag_chunk in
    if nfrags > max_fragments then Error Error.SIZE
    else begin
      let dgram_id = t.next_dgram_id in
      t.next_dgram_id <- (t.next_dgram_id + 1) land 0xff;
      let fragment idx =
        let off = idx * frag_chunk in
        let n = min frag_chunk (total_len - off) in
        let b = Bytes.create (frag_header + n) in
        Bytes.set b 0 (Char.chr dgram_id);
        Bytes.set b 1 (Char.chr idx);
        Bytes.set b 2 (Char.chr nfrags);
        Bytes.set b 3 '\x00';
        Bytes.blit payload off b frag_header n;
        b
      in
      (* Each fragment is acked before the next departs. *)
      let rec send_frag idx =
        let r =
          send_single t ~dest ~extra_flags:flag_fragment (fragment idx)
            ~on_result:(fun result ->
              match result with
              | Error _ as e -> on_result e
              | Ok () ->
                  if idx + 1 < nfrags then (
                    match send_frag (idx + 1) with
                    | Ok () -> ()
                    | Error e -> on_result (Error e))
                  else on_result (Ok ()))
        in
        r
      in
      send_frag 0
    end

let send_ack t ~dest ~seq =
  t.acks <- t.acks + 1;
  let frame =
    build_frame ~seq ~flags:flag_ack ~src:t.radio.Hil.radio_addr ~dst:dest
      Bytes.empty
  in
  ignore (transmit_frame t frame)

let handle_frame t ~src:_ frame =
  let len = Bytes.length frame in
  if len < 2 || Bytes.get frame 0 <> magic0 || Bytes.get frame 1 <> magic1 then
    (* not ours: raw passthrough *)
    `Raw
  else if len < header_size + trailer_size then begin
    t.crc_fail <- t.crc_fail + 1;
    `Dropped
  end
  else begin
    let plen = Char.code (Bytes.get frame 8) in
    if len < header_size + plen + trailer_size then begin
      t.crc_fail <- t.crc_fail + 1;
      `Dropped
    end
    else begin
      let crc_stored =
        Char.code (Bytes.get frame (header_size + plen))
        lor (Char.code (Bytes.get frame (header_size + plen + 1)) lsl 8)
      in
      if crc16 frame ~off:0 ~len:(header_size + plen) <> crc_stored then begin
        t.crc_fail <- t.crc_fail + 1;
        `Dropped
      end
      else begin
        let seq = Char.code (Bytes.get frame 2) in
        let flags = Char.code (Bytes.get frame 3) in
        let fsrc =
          Char.code (Bytes.get frame 4) lor (Char.code (Bytes.get frame 5) lsl 8)
        in
        let fdst =
          Char.code (Bytes.get frame 6) lor (Char.code (Bytes.get frame 7) lsl 8)
        in
        let us = t.radio.Hil.radio_addr in
        if fdst <> us && fdst <> 0xFFFF then `Dropped
        else if flags land flag_ack <> 0 then begin
          (match t.inflight with
          | Some inf when inf.if_seq = seq && inf.if_dest = fsrc ->
              finish_inflight t (Ok ())
          | _ -> ());
          `Dropped
        end
        else begin
          if flags land flag_needs_ack <> 0 then send_ack t ~dest:fsrc ~seq;
          (* duplicate? (retransmits after a lost ack) *)
          match Hashtbl.find_opt t.last_seq fsrc with
          | Some s when s = seq ->
              t.dups <- t.dups + 1;
              `Dropped
          | _ ->
              Hashtbl.replace t.last_seq fsrc seq;
              let body = Bytes.sub frame header_size plen in
              if flags land flag_fragment <> 0 then `Fragment (fsrc, body)
              else `Datagram (fsrc, body)
        end
      end
    end
  end

(* ---- construction ---- *)

let allow_tx = 0

let allow_rx = 0

let sub_tx_done = 0

let sub_rx = 1

let driver_num = 0x30002

let deliver_to_listeners t ~src payload =
  List.iter
    (fun pid ->
      let copied =
        Kernel.with_allow_rw t.kernel pid ~driver:driver_num
          ~allow_num:allow_rx (fun buf ->
            let n = min (Bytes.length payload) (Subslice.length buf) in
            if n > 0 then
              Subslice.blit_from_bytes ~src:payload ~src_off:0 buf ~dst_off:0
                ~len:n;
            n)
      in
      let n = match copied with Ok n -> n | Error _ -> 0 in
      ignore
        (Kernel.schedule_upcall t.kernel pid ~driver:driver_num
           ~subscribe_num:sub_rx ~args:(src, n, 0)))
    t.listeners

let create ?(max_retries = 3) kernel radio amux ~ack_timeout_ticks =
  let t =
    {
      kernel;
      radio;
      valarm = Alarm_mux.new_alarm amux;
      ack_timeout = ack_timeout_ticks;
      max_retries;
      tx_buf = Cells.Take_cell.make (Subslice.create 127);
      current_tx = `None;
      raw_tx_client = (fun (_ : Subslice.t) -> ());
      next_seq = 1;
      inflight = None;
      rx_client = (fun ~src:_ _ -> ());
      raw_rx_client = (fun ~src:_ _ -> ());
      last_seq = Hashtbl.create 8;
      retx = 0;
      dups = 0;
      crc_fail = 0;
      acks = 0;
      listeners = [];
      tx_owner = None;
      next_dgram_id = 1;
      reassembly = Hashtbl.create 8;
      reassembled = 0;
    }
  in
  radio.Hil.radio_set_transmit_client (fun sub ->
      match t.current_tx with
      | `Raw _ ->
          t.current_tx <- `None;
          t.raw_tx_client sub
      | `Net | `None ->
          t.current_tx <- `None;
          Subslice.reset sub;
          Cells.Take_cell.put t.tx_buf sub);
  radio.Hil.radio_set_receive_client (fun ~src frame ->
      match handle_frame t ~src frame with
      | `Raw -> t.raw_rx_client ~src frame
      | `Dropped -> ()
      | `Datagram (fsrc, payload) ->
          t.rx_client ~src:fsrc payload;
          deliver_to_listeners t ~src:fsrc payload
      | `Fragment (fsrc, payload) ->
          if Bytes.length payload >= frag_header then begin
            let dgram_id = Char.code (Bytes.get payload 0) in
            let idx = Char.code (Bytes.get payload 1) in
            let total = Char.code (Bytes.get payload 2) in
            if total >= 1 && total <= max_fragments && idx < total then begin
              let key = (fsrc, dgram_id) in
              let slots =
                match Hashtbl.find_opt t.reassembly key with
                | Some a when Array.length a = total -> a
                | _ ->
                    let a = Array.make total None in
                    Hashtbl.replace t.reassembly key a;
                    a
              in
              slots.(idx) <-
                Some (Bytes.sub payload frag_header (Bytes.length payload - frag_header));
              if Array.for_all Option.is_some slots then begin
                Hashtbl.remove t.reassembly key;
                t.reassembled <- t.reassembled + 1;
                let whole =
                  Bytes.concat Bytes.empty
                    (Array.to_list (Array.map Option.get slots))
                in
                t.rx_client ~src:fsrc whole;
                deliver_to_listeners t ~src:fsrc whole
              end
            end
          end);
  t

let set_receive t fn = t.rx_client <- fn

let set_raw_receive t fn = t.raw_rx_client <- fn

(* A raw pass-through view: plain (non-'TK') frames share the radio with
   the reliable layer. Transmissions interleave at frame granularity. *)
let raw_radio t : Hil.radio =
  {
    Hil.radio_transmit =
      (fun ~dest sub ->
        if t.current_tx <> `None then Error (Error.BUSY, sub)
        else
          match t.radio.Hil.radio_transmit ~dest sub with
          | Ok () ->
              t.current_tx <- `Raw sub;
              Ok ()
          | Error _ as e -> e);
    radio_set_transmit_client = (fun fn -> t.raw_tx_client <- fn);
    radio_set_receive_client = (fun fn -> t.raw_rx_client <- (fun ~src b -> fn ~src b));
    radio_start_listening = (fun () -> t.radio.Hil.radio_start_listening ());
    radio_stop = (fun () -> t.radio.Hil.radio_stop ());
    radio_addr = t.radio.Hil.radio_addr;
  }

let start t = t.radio.Hil.radio_start_listening ()

let retransmissions t = t.retx

let duplicates_dropped t = t.dups

let crc_failures t = t.crc_fail

let acks_sent t = t.acks

let datagrams_reassembled t = t.reassembled

(* ---- syscall driver ---- *)

let command t proc ~command_num ~arg1 ~arg2 =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      if t.tx_owner <> None then Syscall.Failure Error.BUSY
      else
        let payload =
          match
            Kernel.with_allow_ro t.kernel pid ~driver:driver_num
              ~allow_num:allow_tx (fun b ->
                let n = min arg2 (Subslice.length b) in
                Subslice.slice_to b n;
                Subslice.to_bytes b)
          with
          | Ok b -> b
          | Error _ -> Bytes.empty
        in
        if Bytes.length payload = 0 then Syscall.Failure Error.RESERVE
        else
          match
            send t ~dest:arg1 payload ~on_result:(fun r ->
                t.tx_owner <- None;
                let status, retries =
                  match r with
                  | Ok () -> (0, 0)
                  | Error e -> (-Error.to_int e, t.max_retries)
                in
                ignore
                  (Kernel.schedule_upcall t.kernel pid ~driver:driver_num
                     ~subscribe_num:sub_tx_done ~args:(status, retries, 0)))
          with
          | Ok () ->
              t.tx_owner <- Some pid;
              Syscall.Success
          | Error e -> Syscall.Failure e)
  | 2 ->
      start t;
      if not (List.mem pid t.listeners) then t.listeners <- pid :: t.listeners;
      Syscall.Success
  | 3 ->
      t.listeners <- List.filter (fun p -> p <> pid) t.listeners;
      Syscall.Success
  | 4 -> Syscall.Success_u32 t.radio.Hil.radio_addr
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num ~name:"net"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
