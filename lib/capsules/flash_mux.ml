open Tock

type vclient = { mutable client : Hil.flash_event -> unit }

type op =
  | Op_read of int
  | Op_write of int * Subslice.t
  | Op_program of int * int * Subslice.t array
  | Op_erase of int

type t = {
  hw : Hil.flash;
  mutable queue : (vclient * op) list;
  mutable inflight : vclient option;
}

let rec pump t =
  match (t.inflight, t.queue) with
  | None, (vc, op) :: rest -> (
      let started =
        match op with
        | Op_read page -> Result.map_error (fun e -> e) (t.hw.Hil.flash_read ~page)
        | Op_write (page, sub) ->
            Result.map_error (fun (e, _) -> e) (t.hw.Hil.flash_write ~page sub)
        | Op_program (page, off, iov) ->
            Result.map_error (fun (e, _) -> e)
              (t.hw.Hil.flash_program ~page ~off iov)
        | Op_erase page -> Result.map_error (fun e -> e) (t.hw.Hil.flash_erase ~page)
      in
      match started with
      | Ok () ->
          t.queue <- rest;
          t.inflight <- Some vc
      | Error Error.BUSY -> () (* retry on next completion *)
      | Error _ ->
          (* Surface the failure as a completion so the client makes
             progress. *)
          t.queue <- rest;
          (match op with
          | Op_write (_, s) -> vc.client (`Write_done s)
          | Op_program (_, _, iov) -> vc.client (`Program_done iov)
          | Op_read _ -> vc.client (`Read_done Bytes.empty)
          | Op_erase _ -> vc.client `Erase_done);
          pump t)
  | _ -> ()

let create hw =
  let t = { hw; queue = []; inflight = None } in
  hw.Hil.flash_set_client (fun ev ->
      match t.inflight with
      | Some vc ->
          t.inflight <- None;
          vc.client ev;
          pump t
      | None -> ());
  t

let new_client t =
  let vc = { client = (fun _ -> ()) } in
  {
    Hil.flash_pages = t.hw.Hil.flash_pages;
    flash_page_size = t.hw.Hil.flash_page_size;
    flash_read =
      (fun ~page ->
        t.queue <- t.queue @ [ (vc, Op_read page) ];
        pump t;
        Ok ());
    flash_write =
      (fun ~page sub ->
        t.queue <- t.queue @ [ (vc, Op_write (page, sub)) ];
        pump t;
        Ok ());
    flash_program =
      (fun ~page ~off iov ->
        t.queue <- t.queue @ [ (vc, Op_program (page, off, iov)) ];
        pump t;
        Ok ());
    flash_erase =
      (fun ~page ->
        t.queue <- t.queue @ [ (vc, Op_erase page) ];
        pump t;
        Ok ());
    flash_set_client = (fun fn -> vc.client <- fn);
    flash_read_sync = (fun ~page -> t.hw.Hil.flash_read_sync ~page);
  }

let queue_depth t = List.length t.queue
