open Tock

let ring_capacity = 512

let tx_buffer_size = 256

type t = {
  vdev : Uart_mux.vdev;
  ring : Ring_buffer.Bytes_ring.t;
  tx : Subslice.t Cells.Take_cell.t;
  mutable dropped_msgs : int;
}

(* Drain the whole backlog (up to the transmit buffer) in one batched
   UART operation instead of one transmit per message. *)
let pump t =
  match Cells.Take_cell.take t.tx with
  | None -> ()
  | Some sub ->
      if Ring_buffer.Bytes_ring.is_empty t.ring then
        Cells.Take_cell.put t.tx sub
      else begin
        Subslice.reset sub;
        let n = Ring_buffer.Bytes_ring.pop_into t.ring sub in
        Subslice.slice_to sub n;
        match Uart_mux.transmit t.vdev sub with
        | Ok () -> ()
        | Error (_, sub) ->
            Subslice.reset sub;
            Cells.Take_cell.put t.tx sub
      end

let create vdev =
  let t =
    {
      vdev;
      ring = Ring_buffer.Bytes_ring.create ~capacity:ring_capacity;
      tx = Cells.Take_cell.make (Subslice.create tx_buffer_size);
      dropped_msgs = 0;
    }
  in
  Uart_mux.set_transmit_client vdev (fun sub ->
      Subslice.reset sub;
      Cells.Take_cell.put t.tx sub;
      pump t);
  t

let write t msg =
  let msg = msg ^ "\r\n" in
  (* whole messages or nothing: a truncated log line is worse than a
     counted drop *)
  if Ring_buffer.Bytes_ring.free t.ring >= String.length msg then
    ignore (Ring_buffer.Bytes_ring.push_string t.ring msg)
  else t.dropped_msgs <- t.dropped_msgs + 1;
  pump t

let printf t fmt = Printf.ksprintf (fun s -> write t s) fmt

let dropped t = t.dropped_msgs

let pending t = Ring_buffer.Bytes_ring.length t.ring
