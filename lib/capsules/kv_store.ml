open Tock

let magic = 0xA5

let flag_valid = 0x01

type entry = { e_page : int; e_off : int; e_vlen : int }

type pending =
  | P_none
  | P_write of { page : int; done_ : (unit, Error.t) result -> unit }
  | P_compact of {
      mutable to_erase : int list;
      mutable to_write : (int * bytes) list;
      done_ : (unit, Error.t) result -> unit;
    }

type t = {
  kernel : Kernel.t;
  flash : Hil.flash;
  first_page : int;
  n_pages : int;
  index : (string, entry) Hashtbl.t;
  mutable tail_page : int; (* relative *)
  mutable tail_off : int;
  mutable pending : pending;
  mutable compactions : int;
  mutable queue : (unit -> unit) list; (* serialized operations *)
  mutable busy : bool;
  (* scatter-gather staging: the 5-byte record header programmed ahead of
     the key/value windows, and the single cleared flag byte of a delete *)
  rec_hdr : Subslice.t;
  del_flag : Subslice.t;
}

let page_size t = t.flash.Hil.flash_page_size

(* ---- index scan at boot ---- *)

let scan t =
  Hashtbl.reset t.index;
  t.tail_page <- 0;
  t.tail_off <- 0;
  let continue_scan = ref true in
  for rel = 0 to t.n_pages - 1 do
    if !continue_scan then begin
      let img = t.flash.Hil.flash_read_sync ~page:(t.first_page + rel) in
      let off = ref 0 in
      let page_open = ref true in
      while !page_open && !off + 5 <= Bytes.length img do
        if Char.code (Bytes.get img !off) <> magic then begin
          (* end of records on this page *)
          page_open := false;
          if !off = 0 && rel > 0 then continue_scan := false
          else if !continue_scan then begin
            t.tail_page <- rel;
            t.tail_off <- !off
          end
        end
        else begin
          let flags = Char.code (Bytes.get img (!off + 1)) in
          let klen = Char.code (Bytes.get img (!off + 2)) in
          let vlen =
            Char.code (Bytes.get img (!off + 3))
            lor (Char.code (Bytes.get img (!off + 4)) lsl 8)
          in
          let total = 5 + klen + vlen in
          if !off + total > Bytes.length img then page_open := false
          else begin
            let key = Bytes.sub_string img (!off + 5) klen in
            if flags land flag_valid <> 0 then
              Hashtbl.replace t.index key
                { e_page = rel; e_off = !off; e_vlen = vlen }
            else Hashtbl.remove t.index key;
            off := !off + total;
            t.tail_page <- rel;
            t.tail_off <- !off
          end
        end
      done
    end
  done

(* The long-lived flash completion client driving writes and the
   compaction erase/write chain. Reads during [get] temporarily borrow the
   client slot and reinstall this. *)
let main_client t ev =
  match (t.pending, ev) with
  | P_write { done_; _ }, (`Write_done _ | `Program_done _) ->
      t.pending <- P_none;
      done_ (Ok ())
  | P_compact c, `Erase_done -> (
      match c.to_erase with
      | _ :: (p :: _ as rest) ->
          c.to_erase <- rest;
          ignore (t.flash.Hil.flash_erase ~page:p)
      | _ -> (
          c.to_erase <- [];
          match c.to_write with
          | (p, img) :: _ ->
              ignore (t.flash.Hil.flash_write ~page:p (Subslice.of_bytes img))
          | [] ->
              t.pending <- P_none;
              c.done_ (Ok ())))
  | P_compact c, `Write_done _ -> (
      match c.to_write with
      | _ :: ((p, img) :: _ as rest) ->
          c.to_write <- rest;
          ignore (t.flash.Hil.flash_write ~page:p (Subslice.of_bytes img))
      | _ ->
          t.pending <- P_none;
          c.done_ (Ok ()))
  | _ -> ()

let create kernel flash ~first_page ~pages =
  if pages < 2 then invalid_arg "Kv_store.create: need >= 2 pages";
  let t =
    {
      kernel;
      flash;
      first_page;
      n_pages = pages;
      index = Hashtbl.create 32;
      tail_page = 0;
      tail_off = 0;
      pending = P_none;
      compactions = 0;
      queue = [];
      busy = false;
      rec_hdr = Subslice.create 5;
      del_flag = Subslice.create 1;
    }
  in
  scan t;
  flash.Hil.flash_set_client (main_client t);
  t

(* ---- serialized operation queue ---- *)

let run_next t =
  match t.queue with
  | [] -> t.busy <- false
  | op :: rest ->
      t.queue <- rest;
      t.busy <- true;
      op ()

let submit t op =
  t.queue <- t.queue @ [ op ];
  if not t.busy then run_next t

let finish t k result =
  (* Complete the caller, then service the next queued operation. *)
  k result;
  run_next t

(* ---- primitive: append one record as a scatter-gather program ----

   The record on flash is [5-byte header | key | value]. The header is
   staged in [t.rec_hdr] and the key/value ride as windows in the program
   iovec: the flash DMA gathers them straight into its write latch, so
   the page is no longer read-modify-written and the value bytes cross
   from the caller (for the syscall path, from the process's allow
   window) to the hardware without a software copy. *)

let append_sub t ~key_str ~key ~value k =
  let klen = Subslice.length key and vlen = Subslice.length value in
  let total = 5 + klen + vlen in
  if total > page_size t then k (Error Error.SIZE)
  else begin
    (* Advance to the next page if the record does not fit. *)
    if t.tail_off + total > page_size t then begin
      t.tail_page <- t.tail_page + 1;
      t.tail_off <- 0
    end;
    if t.tail_page >= t.n_pages then k (Error Error.NOMEM)
    else begin
      let abs = t.first_page + t.tail_page in
      let h = t.rec_hdr in
      Subslice.set_u8 h 0 magic;
      Subslice.set_u8 h 1 flag_valid;
      Subslice.set_u8 h 2 klen;
      Subslice.set_u8 h 3 (vlen land 0xff);
      Subslice.set_u8 h 4 ((vlen lsr 8) land 0xff);
      let rel_page = t.tail_page and off = t.tail_off in
      t.pending <-
        P_write
          {
            page = abs;
            done_ =
              (fun r ->
                match r with
                | Ok () ->
                    Hashtbl.replace t.index key_str
                      { e_page = rel_page; e_off = off; e_vlen = vlen };
                    t.tail_off <- off + total;
                    k (Ok ())
                | Error e -> k (Error e));
          };
      match t.flash.Hil.flash_program ~page:abs ~off [| h; key; value |] with
      | Ok () -> ()
      | Error (e, _) ->
          t.pending <- P_none;
          k (Error e)
    end
  end

(* ---- compaction ---- *)

(* Compaction rebuilds whole page images in memory, so it still encodes
   owned records — it runs rarely and off the data path. *)
let encode_record key value =
  let klen = Bytes.length key and vlen = Bytes.length value in
  let b = Bytes.create (5 + klen + vlen) in
  Bytes.set b 0 (Char.chr magic);
  Bytes.set b 1 (Char.chr flag_valid);
  Bytes.set b 2 (Char.chr klen);
  Bytes.set b 3 (Char.chr (vlen land 0xff));
  Bytes.set b 4 (Char.chr ((vlen lsr 8) land 0xff));
  Bytes.blit key 0 b 5 klen;
  Bytes.blit value 0 b (5 + klen) vlen;
  b

let compact t k =
  t.compactions <- t.compactions + 1;
  (* Snapshot live records from flash. *)
  let live =
    Hashtbl.fold
      (fun key e acc ->
        let img = t.flash.Hil.flash_read_sync ~page:(t.first_page + e.e_page) in
        let klen = Char.code (Bytes.get img (e.e_off + 2)) in
        (* otock-lint: allow capsule-byte-copy — compaction snapshots live
           records before erasing their pages; it runs rarely and off the
           data path *)
        let value = Bytes.sub img (e.e_off + 5 + klen) e.e_vlen in
        (Bytes.of_string key, value) :: acc)
      t.index []
  in
  (* Rebuild page images in memory. *)
  let pages = Array.init t.n_pages (fun _ -> Bytes.make (page_size t) '\xff') in
  let rel = ref 0 and off = ref 0 in
  let overflow = ref false in
  Hashtbl.reset t.index;
  List.iter
    (fun (key, value) ->
      let r = encode_record key value in
      let total = Bytes.length r in
      if !off + total > page_size t then begin
        incr rel;
        off := 0
      end;
      if !rel >= t.n_pages then overflow := true
      else begin
        Bytes.blit r 0 pages.(!rel) !off total;
        Hashtbl.replace t.index (Bytes.to_string key)
          { e_page = !rel; e_off = !off; e_vlen = Bytes.length value };
        off := !off + total
      end)
    live;
  if !overflow then k (Error Error.NOMEM)
  else begin
    t.tail_page <- !rel;
    t.tail_off <- !off;
    let to_erase = List.init t.n_pages (fun i -> t.first_page + i) in
    let to_write =
      List.init t.n_pages (fun i -> (t.first_page + i, pages.(i)))
    in
    t.pending <- P_compact { to_erase; to_write; done_ = k };
    match to_erase with
    | p :: _ -> ignore (t.flash.Hil.flash_erase ~page:p)
    | [] -> k (Ok ())
  end

(* ---- public split-phase API ---- *)

let get_sub t ~key k =
  submit t (fun () ->
      match Hashtbl.find_opt t.index (Bytes.to_string key) with
      | None -> finish t k (Ok None)
      | Some e ->
          (* Asynchronous page read for timing fidelity: borrow the client
             slot for this one read, then reinstall the main client. *)
          let abs = t.first_page + e.e_page in
          t.flash.Hil.flash_set_client (fun ev ->
              match ev with
              | `Read_done img ->
                  t.flash.Hil.flash_set_client (main_client t);
                  (* the value is a window over the read image — the
                     caller blits it where it belongs (one copy) *)
                  let klen = Char.code (Bytes.get img (e.e_off + 2)) in
                  let w =
                    Subslice.of_bytes_window img ~pos:(e.e_off + 5 + klen)
                      ~len:e.e_vlen
                  in
                  finish t k (Ok (Some w))
              | _ -> ());
          (match t.flash.Hil.flash_read ~page:abs with
          | Ok () -> ()
          | Error e2 ->
              t.flash.Hil.flash_set_client (main_client t);
              finish t k (Error e2)))

let get t ~key k =
  get_sub t ~key (fun r ->
      k
        (match r with
        | Ok (Some w) -> Ok (Some (Subslice.to_bytes w))
        | Ok None -> Ok None
        | Error e -> Error e))

let set_sub t ~key ~value k =
  submit t (fun () ->
      if Bytes.length key > 255 || Subslice.length value > 0xFFFF then
        finish t k (Error Error.SIZE)
      else
        let key_str = Bytes.to_string key in
        let key_w = Subslice.of_bytes key in
        append_sub t ~key_str ~key:key_w ~value (fun r ->
            match r with
            | Ok () -> finish t k (Ok ())
            | Error Error.NOMEM ->
                (* Region full: compact, then retry once. *)
                compact t (fun r2 ->
                    match r2 with
                    | Ok () ->
                        append_sub t ~key_str ~key:key_w ~value (fun r3 ->
                            finish t k r3)
                    | Error e -> finish t k (Error e))
            | Error e -> finish t k (Error e)))

let set t ~key ~value k = set_sub t ~key ~value:(Subslice.of_bytes value) k

let delete t ~key k =
  submit t (fun () ->
      match Hashtbl.find_opt t.index (Bytes.to_string key) with
      | None -> finish t k (Ok false)
      | Some e ->
          let abs = t.first_page + e.e_page in
          (* NOR trick: program the flag byte to 0 in place (1 -> 0 needs
             no erase) — one byte on the wire instead of a page
             read-modify-write. *)
          Subslice.set_u8 t.del_flag 0 0;
          t.pending <-
            P_write
              {
                page = abs;
                done_ =
                  (fun r ->
                    match r with
                    | Ok () ->
                        Hashtbl.remove t.index (Bytes.to_string key);
                        finish t k (Ok true)
                    | Error e -> finish t k (Error e));
              };
          (match
             t.flash.Hil.flash_program ~page:abs ~off:(e.e_off + 1)
               [| t.del_flag |]
           with
          | Ok () -> ()
          | Error (e2, _) ->
              t.pending <- P_none;
              finish t k (Error e2)))

let live_keys t = Hashtbl.length t.index

let compactions t = t.compactions

(* ---- syscall driver ---- *)

let status_err e = -Error.to_int e

let read_key t pid =
  match
    Kernel.with_allow_ro t.kernel pid ~driver:Driver_num.kv_store ~allow_num:0
      (fun b -> Subslice.to_bytes b)
  with
  | Ok k when Bytes.length k > 0 -> Some k
  | _ -> None

let command t proc ~command_num ~arg1:_ ~arg2:_ =
  let pid = Process.id proc in
  let upcall args =
    ignore
      (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.kv_store
         ~subscribe_num:0 ~args)
  in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      match read_key t pid with
      | None -> Syscall.Failure Error.RESERVE
      | Some key ->
          get_sub t ~key (fun r ->
              match r with
              | Ok None -> upcall (status_err Error.NODEVICE, 0, 0)
              | Ok (Some value) ->
                  (* single delivery copy: read image -> allow window *)
                  let written =
                    Kernel.with_allow_rw t.kernel pid
                      ~driver:Driver_num.kv_store ~allow_num:0 (fun out ->
                        let m =
                          min (Subslice.length value) (Subslice.length out)
                        in
                        if m > 0 then
                          Subslice.blit ~src:value ~src_off:0 ~dst:out
                            ~dst_off:0 ~len:m;
                        m)
                  in
                  let n = match written with Ok n -> n | Error _ -> 0 in
                  upcall (0, n, 0)
              | Error e -> upcall (status_err e, 0, 0));
          Syscall.Success)
  | 2 -> (
      match read_key t pid with
      | None -> Syscall.Failure Error.RESERVE
      | Some key ->
          (* the value rides as the process's allow window all the way to
             the flash program gather — no staging copy *)
          let value =
            match
              Kernel.allow_window t.kernel pid ~kind:`Ro
                ~driver:Driver_num.kv_store ~allow_num:1
            with
            | Some w -> w
            | None -> Subslice.of_bytes Bytes.empty
          in
          set_sub t ~key ~value (fun r ->
              match r with
              | Ok () -> upcall (0, Subslice.length value, 0)
              | Error e -> upcall (status_err e, 0, 0));
          Syscall.Success)
  | 3 -> (
      match read_key t pid with
      | None -> Syscall.Failure Error.RESERVE
      | Some key ->
          delete t ~key (fun r ->
              match r with
              | Ok present -> upcall (0, (if present then 1 else 0), 0)
              | Error e -> upcall (status_err e, 0, 0));
          Syscall.Success)
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.kv_store ~name:"kv"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
