open Tock

let buffer_size = 512

type t = {
  kernel : Kernel.t;
  engine : Hil.aes;
  buf : Subslice.t Cells.Take_cell.t;
  mutable current : (Process.id * int) option; (* pid, len *)
}

let create kernel engine =
  let t =
    {
      kernel;
      engine;
      buf = Cells.Take_cell.make (Subslice.create buffer_size);
      current = None;
    }
  in
  engine.Hil.aes_set_client (fun sub ->
      (match t.current with
      | Some (pid, len) ->
          t.current <- None;
          let written =
            Kernel.with_allow_rw t.kernel pid ~driver:Driver_num.aes
              ~allow_num:0 (fun out ->
                let m = min len (Subslice.length out) in
                Subslice.blit ~src:sub ~src_off:0 ~dst:out ~dst_off:0 ~len:m;
                m)
          in
          let n = match written with Ok n -> n | Error _ -> 0 in
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.aes
               ~subscribe_num:0 ~args:(n, 0, 0))
      | None -> ());
      Subslice.reset sub;
      Cells.Take_cell.put t.buf sub);
  t

let get_ro t pid ~allow_num ~expect =
  match
    Kernel.with_allow_ro t.kernel pid ~driver:Driver_num.aes ~allow_num
      (fun b -> Subslice.to_bytes b)
  with
  | Ok b when Bytes.length b = expect -> Ok b
  | Ok _ -> Error Error.SIZE
  | Error e -> Error e

let command t proc ~command_num ~arg1:_ ~arg2:_ =
  let pid = Process.id proc in
  let start mode =
    if t.current <> None then Syscall.Failure Error.BUSY
    else
      match (get_ro t pid ~allow_num:0 ~expect:16, get_ro t pid ~allow_num:1 ~expect:16) with
      | Error e, _ -> Syscall.Failure e
      | _, Error e -> Syscall.Failure e
      | Ok key, Ok iv -> (
          match (t.engine.Hil.aes_set_key key, t.engine.Hil.aes_set_iv iv) with
          | Error e, _ | _, Error e -> Syscall.Failure e
          | Ok (), Ok () -> (
              match Cells.Take_cell.take t.buf with
              | None -> Syscall.Failure Error.BUSY
              | Some sub -> (
                  Subslice.reset sub;
                  let copied =
                    Kernel.with_allow_rw t.kernel pid ~driver:Driver_num.aes
                      ~allow_num:0 (fun data ->
                        let m = min (Subslice.length data) (Subslice.length sub) in
                        Subslice.slice_to sub m;
                        Subslice.copy_within data sub;
                        m)
                  in
                  match copied with
                  | Ok m when m > 0 -> (
                      match t.engine.Hil.aes_crypt mode sub with
                      | Ok () ->
                          t.current <- Some (pid, m);
                          Syscall.Success
                      | Error (e, sub) ->
                          Subslice.reset sub;
                          Cells.Take_cell.put t.buf sub;
                          Syscall.Failure e)
                  | Ok _ ->
                      Subslice.reset sub;
                      Cells.Take_cell.put t.buf sub;
                      Syscall.Failure Error.RESERVE
                  | Error e ->
                      Subslice.reset sub;
                      Cells.Take_cell.put t.buf sub;
                      Syscall.Failure e)))
  in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> start Hil.A_ctr
  | 2 -> start Hil.A_ecb_encrypt
  | 3 -> start Hil.A_ecb_decrypt
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.aes ~name:"aes"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
