open Tock

type t = {
  kernel : Kernel.t;
  services : (string, Process.id) Hashtbl.t;
  mutable notifies : int;
  mutable bytes : int;
}

let create kernel =
  { kernel; services = Hashtbl.create 8; notifies = 0; bytes = 0 }

let read_name t pid =
  match
    Kernel.with_allow_ro t.kernel pid ~driver:Driver_num.ipc ~allow_num:0
      (fun b -> Subslice.to_bytes b)
  with
  | Ok b when Bytes.length b > 0 -> Some (Bytes.to_string b)
  | _ -> None

let command t proc ~command_num ~arg1 ~arg2 =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      (* discover a service by its allowed name *)
      match read_name t pid with
      | None -> Syscall.Failure Error.RESERVE
      | Some name -> (
          match Hashtbl.find_opt t.services name with
          | Some spid -> Syscall.Success_u32 spid
          | None -> Syscall.Failure Error.NODEVICE))
  | 2 ->
      (* register the calling process as a service under its own name *)
      (match Kernel.process_name_of t.kernel pid with
      | Some name ->
          Hashtbl.replace t.services name pid;
          Syscall.Success
      | None -> Syscall.Failure Error.FAIL)
  | 3 ->
      (* notify process arg1 with value arg2 *)
      if Kernel.find_process t.kernel arg1 = None then
        Syscall.Failure Error.NODEVICE
      else begin
        t.notifies <- t.notifies + 1;
        ignore
          (Kernel.schedule_upcall t.kernel arg1 ~driver:Driver_num.ipc
             ~subscribe_num:0 ~args:(pid, arg2, 0));
        Syscall.Success
      end
  | 4 ->
      (* move a message to process arg1: sender allow-ro 1 -> receiver
         allow-rw 1, both windows resolved through the kernel tables so
         neither process touches the other's memory. One window-to-window
         blit — no kernel staging buffer in between. *)
      if Kernel.find_process t.kernel arg1 = None then
        Syscall.Failure Error.NODEVICE
      else begin
        let src =
          match
            Kernel.allow_window t.kernel pid ~kind:`Ro ~driver:Driver_num.ipc
              ~allow_num:1
          with
          | Some w ->
              Subslice.slice_to w (min arg2 (Subslice.length w));
              w
          | None -> Subslice.of_bytes Bytes.empty
        in
        if Subslice.length src = 0 then Syscall.Failure Error.RESERVE
        else
          let copied =
            match
              Kernel.with_allow_rw t.kernel arg1 ~driver:Driver_num.ipc
                ~allow_num:1 (fun dst ->
                  let n = min (Subslice.length src) (Subslice.length dst) in
                  Subslice.blit ~src ~src_off:0 ~dst ~dst_off:0 ~len:n;
                  n)
            with
            | Ok n -> n
            | Error _ -> 0
          in
          t.bytes <- t.bytes + copied;
          ignore
            (Kernel.schedule_upcall t.kernel arg1 ~driver:Driver_num.ipc
               ~subscribe_num:1 ~args:(pid, copied, 0));
          Syscall.Success_u32 copied
      end
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.ipc ~name:"ipc"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)

let notifies_sent t = t.notifies

let bytes_transferred t = t.bytes
