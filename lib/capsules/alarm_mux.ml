(* All arithmetic is wrapping 32-bit tick math — the paper's §5.4 bug
   nest. Keep every comparison in "elapsed vs dt" form; never compare
   absolute tick values directly. *)

let mask32 = 0xFFFFFFFF

let wsub a b = (a - b) land mask32

let expired ~reference ~dt ~now = wsub now reference >= dt

type valarm = {
  mux : t;
  mutable client : unit -> unit;
  mutable armed : bool;
  mutable reference : int;
  mutable dt : int;
}

and t = {
  hw : Tock.Hil.alarm;
  mutable alarms : valarm list;
  mutable in_fire : bool;
  mutable fired : int;
  o : Tock_obs.Ctx.t;
  c_fired : Tock_obs.Metrics.counter;
}

let rec rearm t =
  let now = t.hw.Tock.Hil.alarm_now () in
  let armed = List.filter (fun v -> v.armed) t.alarms in
  match armed with
  | [] -> t.hw.Tock.Hil.alarm_disarm ()
  | _ ->
      (* Earliest deadline = smallest remaining time; expired alarms have
         zero remaining and make the hardware fire on the next tick. *)
      let remaining v =
        if expired ~reference:v.reference ~dt:v.dt ~now then 0
        else v.dt - wsub now v.reference
      in
      let best =
        List.fold_left
          (fun acc v -> match acc with
             | None -> Some v
             | Some b -> if remaining v < remaining b then Some v else Some b)
          None armed
      in
      (match best with
      | Some v -> t.hw.Tock.Hil.alarm_set ~reference:v.reference ~dt:v.dt
      | None -> ())

and fire t () =
  t.in_fire <- true;
  let now = t.hw.Tock.Hil.alarm_now () in
  (* Sweep once with the fire-time snapshot of "now": alarms re-armed by
     client callbacks are deliberately *not* considered expired in this
     pass, they get their own hardware fire. *)
  let ready =
    List.filter
      (fun v -> v.armed && expired ~reference:v.reference ~dt:v.dt ~now)
      t.alarms
  in
  (match ready with
  | [] -> ()
  | _ ->
      let n = List.length ready in
      Tock_obs.Metrics.add t.c_fired n;
      let tr = t.o.Tock_obs.Ctx.trace in
      if Tock_obs.Trace.on tr then
        Tock_obs.Trace.emit tr ~ts:(Tock_obs.Ctx.now t.o) ~tid:(-1)
          Tock_obs.Trace.Alarm_fire Tock_obs.Trace.Instant ~arg:n ~text:"mux");
  List.iter
    (fun v ->
      v.armed <- false;
      t.fired <- t.fired + 1;
      v.client ())
    ready;
  t.in_fire <- false;
  rearm t

let create ?(obs = Tock_obs.Ctx.disabled) hw =
  let t =
    { hw; alarms = []; in_fire = false; fired = 0; o = obs;
      c_fired = Tock_obs.Metrics.counter obs.Tock_obs.Ctx.metrics
                  "alarm_mux.fired" }
  in
  hw.Tock.Hil.alarm_set_client (fire t);
  t

let new_alarm t =
  let v = { mux = t; client = ignore; armed = false; reference = 0; dt = 0 } in
  t.alarms <- v :: t.alarms;
  v

let set_client v fn = v.client <- fn

let now v = v.mux.hw.Tock.Hil.alarm_now ()

let frequency_hz v = v.mux.hw.Tock.Hil.alarm_frequency_hz

let set_alarm v ~reference ~dt =
  v.reference <- reference land mask32;
  v.dt <- dt land mask32;
  v.armed <- true;
  (* During a fire sweep the mux re-arms once at the end; otherwise
     reprogram now. *)
  if not v.mux.in_fire then rearm v.mux

let set_relative v ~dt = set_alarm v ~reference:(now v) ~dt

let cancel v =
  if v.armed then begin
    v.armed <- false;
    if not v.mux.in_fire then rearm v.mux
  end

let is_armed v = v.armed

let alarm_params v = (v.reference, v.dt)

let iter_alarms t f = List.iter f t.alarms

let armed_count t = List.length (List.filter (fun v -> v.armed) t.alarms)

let fired_total t = t.fired
