(** Log-structured key-value store over NOR flash (TicKV-style), plus its
    syscall driver (driver 0x50003).

    Records are appended to a region of flash pages; deletes exploit NOR
    semantics by clearing the record's valid bit in place (bits can only
    go 1 -> 0 without an erase). When the region fills, live records are
    compacted: pages are erased and rewritten through an asynchronous
    erase/write chain, exercising wear counters. An in-memory index is
    rebuilt by scanning flash at creation, so the store survives
    "reboots" (re-creation over the same flash).

    Record layout: [0xA5, flags, keylen, vallen_lo, vallen_hi, key...,
    value...]; flags bit0 = valid (cleared on delete).

    Kernel-facing API ({!get}/{!set}/{!delete}) is split-phase; the
    syscall driver maps it for userspace:
    allow-ro 0 = key; allow-ro 1 = value (set); allow-rw 0 = value out
    (get); command 1 = get, 2 = set, 3 = delete; upcall sub 0 =
    [(status, len, 0)] with status 0 = ok, negative = ErrorCode. *)

type t

val create : Tock.Kernel.t -> Tock.Hil.flash -> first_page:int -> pages:int -> t
(** Scans the region and rebuilds the index. *)

val get : t -> key:bytes -> ((bytes option, Tock.Error.t) result -> unit) -> unit
(** [Ok None] = key absent. Copies the value out; {!get_sub} hands back
    the window instead. *)

val get_sub :
  t ->
  key:bytes ->
  ((Tock.Subslice.t option, Tock.Error.t) result -> unit) ->
  unit
(** Zero-copy read: the value arrives as a window over the page image the
    flash read delivered; blit it where it belongs. The window is only
    valid inside the callback. *)

val set : t -> key:bytes -> value:bytes -> ((unit, Tock.Error.t) result -> unit) -> unit

val set_sub :
  t ->
  key:bytes ->
  value:Tock.Subslice.t ->
  ((unit, Tock.Error.t) result -> unit) ->
  unit
(** Zero-copy write: the value window rides in the flash program iovec in
    place. The bytes must stay stable until the callback fires. *)

val delete : t -> key:bytes -> ((bool, Tock.Error.t) result -> unit) -> unit
(** [Ok false] = key was absent. *)

val live_keys : t -> int

val compactions : t -> int

val driver : t -> Tock.Driver.t
