open Tock

type grant_state = { mutable wanted : int (* bytes outstanding, 0 = idle *) }

type t = {
  kernel : Kernel.t;
  entropy : Hil.entropy;
  grant : grant_state Grant.t;
  mutable queue : Process.id list;
  mutable serving : Process.id option;
}

let enter t pid f =
  match Kernel.find_process t.kernel pid with
  | Some p -> Grant.enter t.grant p f
  | None -> Result.Error Error.NODEVICE

let rec pump t =
  match (t.serving, t.queue) with
  | None, pid :: rest -> (
      t.queue <- rest;
      match enter t pid (fun g -> g.wanted) with
      | Ok wanted when wanted > 0 -> (
          let words = (wanted + 3) / 4 in
          match t.entropy.Hil.entropy_request ~count:words with
          | Ok () -> t.serving <- Some pid
          | Error _ ->
              ignore
                (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.rng
                   ~subscribe_num:0 ~args:(0, 0, 0));
              pump t)
      | _ -> pump t)
  | _ -> ()

let create kernel entropy ~grant_cap =
  let t =
    {
      kernel;
      entropy;
      grant =
        Grant.create ~cap:grant_cap ~name:"rng" ~size_bytes:8 ~init:(fun () ->
            { wanted = 0 });
      queue = [];
      serving = None;
    }
  in
  Kernel.register_grant kernel ~name:"rng"
    ~preallocate:(fun p -> Grant.preallocate t.grant p)
    ~is_allocated:(fun p -> Grant.is_allocated t.grant p);
  entropy.Hil.entropy_set_client (fun words ->
      match t.serving with
      | Some pid ->
          t.serving <- None;
          let wanted =
            match enter t pid (fun g ->
                      let w = g.wanted in
                      g.wanted <- 0;
                      w)
            with
            | Ok w -> w
            | Error _ -> 0
          in
          let filled =
            Kernel.with_allow_rw t.kernel pid ~driver:Driver_num.rng
              ~allow_num:0 (fun buf ->
                let n = min wanted (Subslice.length buf) in
                for i = 0 to n - 1 do
                  let w = words.(i / 4) in
                  Subslice.set_u8 buf i ((w lsr (8 * (i mod 4))) land 0xff)
                done;
                n)
          in
          let n = match filled with Ok n -> n | Error _ -> 0 in
          ignore
            (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.rng
               ~subscribe_num:0 ~args:(n, 0, 0));
          pump t
      | None -> ());
  t

let command t proc ~command_num ~arg1 ~arg2:_ =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      if arg1 <= 0 then Syscall.Failure Error.INVAL
      else
        match
          Grant.enter t.grant proc (fun g ->
              if g.wanted > 0 then false
              else begin
                g.wanted <- arg1;
                true
              end)
        with
        | Ok true ->
            t.queue <- t.queue @ [ pid ];
            pump t;
            Syscall.Success
        | Ok false -> Syscall.Failure Error.BUSY
        | Error e -> Syscall.Failure e)
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.rng ~name:"rng"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
