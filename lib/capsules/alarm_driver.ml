open Tock

type grant_state = { valarm : Alarm_mux.valarm; mutable armed : bool }

type t = { kernel : Kernel.t; mux : Alarm_mux.t; grant : grant_state Grant.t }

let enter t proc f = Grant.enter t.grant proc f

(* Freeze/thaw: the witness records the mux's grant-owned virtual alarms
   in allocation order (fire sweeps visit clients in list order, so the
   order is observable under simultaneous expiries) plus each armed
   alarm's absolute (reference, dt). Thaw's [`Pre] load preallocates the
   grants in that order — rebuilding the mux list — and installs the
   resume alarm each live app's prologue re-arms via command 4. *)

let freeze_save t buf =
  let procs = Kernel.processes t.kernel in
  let entries = ref [] in
  Alarm_mux.iter_alarms t.mux (fun v ->
      List.iter
        (fun p ->
          match Grant.peek t.grant p with
          | Some g when g.valarm == v ->
              (* iter visits newest-first; prepending leaves the final
                 list in allocation order. *)
              entries := (Process.id p, Alarm_mux.is_armed v, v) :: !entries
          | _ -> ())
        procs);
  Kernel.Witness.add_int buf (List.length !entries);
  List.iter
    (fun (pid, armed, v) ->
      Kernel.Witness.add_int buf pid;
      Kernel.Witness.add_int buf (if armed then 1 else 0);
      if armed then begin
        (* (reference, dt) is stale on a disarmed alarm: elided. *)
        let reference, dt = Alarm_mux.alarm_params v in
        Kernel.Witness.add_int buf reference;
        Kernel.Witness.add_int buf dt
      end)
    !entries

let freeze_load t blob =
  Kernel.Witness.guard (fun () ->
      let r = Kernel.Witness.reader blob in
      let n = Kernel.Witness.int r in
      if n < 0 || n > 100_000 then
        Kernel.Witness.corrupt "bad alarm entry count %d" n;
      let procs = Kernel.processes t.kernel in
      for _ = 1 to n do
        let pid = Kernel.Witness.int r in
        let armed = Kernel.Witness.int r in
        let resume =
          if armed = 1 then begin
            let reference = Kernel.Witness.int r in
            let dt = Kernel.Witness.int r in
            Some (reference, dt)
          end
          else if armed = 0 then None
          else Kernel.Witness.corrupt "bad armed flag %d" armed
        in
        match List.find_opt (fun p -> Process.id p = pid) procs with
        | None -> Kernel.Witness.corrupt "alarm entry for unknown pid %d" pid
        | Some p ->
            if not (Grant.preallocate t.grant p) then
              Kernel.Witness.corrupt "alarm grant preallocation failed (pid %d)"
                pid;
            Process.set_resume_alarm p resume
      done;
      if not (Kernel.Witness.at_end r) then
        Kernel.Witness.corrupt "trailing bytes in alarm section")

let create kernel mux ~grant_cap =
  let t =
    {
      kernel;
      mux;
      grant =
        Grant.create ~cap:grant_cap ~name:"alarm" ~size_bytes:24 ~init:(fun () ->
            { valarm = Alarm_mux.new_alarm mux; armed = false });
    }
  in
  Kernel.register_grant kernel ~name:"alarm"
    ~preallocate:(fun p -> Grant.preallocate t.grant p)
    ~is_allocated:(fun p -> Grant.is_allocated t.grant p);
  Kernel.register_freezer kernel ~name:"alarm" ~phase:`Pre
    ~save:(fun buf -> freeze_save t buf)
    ~load:(fun blob -> freeze_load t blob);
  t

(* Arm [g]'s virtual alarm at absolute (reference, dt) and register the
   completion upcall. Shared by command 4 (absolute, also the thaw
   resume path) and command 5 (relative). *)
let arm t g pid ~reference ~dt =
  Alarm_mux.set_client g.valarm (fun () ->
      g.armed <- false;
      ignore
        (Kernel.schedule_upcall t.kernel pid ~driver:Driver_num.alarm
           ~subscribe_num:0
           ~args:(Alarm_mux.now g.valarm, reference, 0)));
  Alarm_mux.set_alarm g.valarm ~reference ~dt;
  g.armed <- true;
  reference

let command t proc ~command_num ~arg1 ~arg2 =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      match enter t proc (fun g -> Alarm_mux.frequency_hz g.valarm) with
      | Ok hz -> Syscall.Success_u32 hz
      | Error e -> Syscall.Failure e)
  | 2 -> (
      match enter t proc (fun g -> Alarm_mux.now g.valarm) with
      | Ok ticks -> Syscall.Success_u32 ticks
      | Error e -> Syscall.Failure e)
  | 4 -> (
      (* arm an absolute alarm: reference = arg1, dt = arg2 *)
      let r =
        enter t proc (fun g ->
            arm t g pid ~reference:(arg1 land 0xFFFF_FFFF)
              ~dt:(arg2 land 0xFFFF_FFFF))
      in
      match r with
      | Ok reference -> Syscall.Success_u32 reference
      | Error e -> Syscall.Failure e)
  | 5 -> (
      (* arm a relative alarm of arg1 ticks *)
      let r =
        enter t proc (fun g ->
            arm t g pid ~reference:(Alarm_mux.now g.valarm) ~dt:arg1)
      in
      match r with
      | Ok reference -> Syscall.Success_u32 reference
      | Error e -> Syscall.Failure e)
  | 6 -> (
      match
        enter t proc (fun g ->
            Alarm_mux.cancel g.valarm;
            g.armed <- false)
      with
      | Ok () -> Syscall.Success
      | Error e -> Syscall.Failure e)
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.alarm ~name:"alarm"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
