open Tock

let chunk_size = 64

type op = {
  op_pid : Process.id;
  op_driver : int; (* hmac or sha driver number *)
  mutable offset : int;
  data_len : int;
}

type t = {
  kernel : Kernel.t;
  engine : Hil.digest;
  mutable chunk_in_flight : bool;
  mutable current : op option;
  mutable ops : int;
}

let allow_key = 0

let allow_data = 1

let allow_digest_out = 0

let fail_current t e =
  match t.current with
  | Some op ->
      t.current <- None;
      ignore
        (Kernel.schedule_upcall t.kernel op.op_pid ~driver:op.op_driver
           ~subscribe_num:0 ~args:(-(Error.to_int e), 0, 0))
  | None -> ()

(* Feed the next DMA-sized chunk of the process's data buffer, or run the
   finalization when everything has been absorbed. The chunk handed to the
   engine is a window over the allow buffer itself — the engine reads
   process memory in place, no staging copy. *)
let feed t =
  match t.current with
  | None -> ()
  | Some op ->
      if op.offset >= op.data_len then (
        match t.engine.Hil.digest_run () with
        | Ok () -> ()
        | Error e -> fail_current t e)
      else if t.chunk_in_flight then ()
      else (
        match
          Kernel.allow_window t.kernel op.op_pid ~kind:`Ro
            ~driver:op.op_driver ~allow_num:allow_data
        with
        | None -> fail_current t Error.RESERVE
        | Some data ->
            let n = min chunk_size (op.data_len - op.offset) in
            let m = min n (Subslice.length data - op.offset) in
            if m <= 0 then fail_current t Error.RESERVE
            else begin
              Subslice.slice ~pos:op.offset ~len:m data;
              op.offset <- op.offset + m;
              t.chunk_in_flight <- true;
              match t.engine.Hil.digest_add_data data with
              | Ok () -> ()
              | Error (e, _sub) ->
                  t.chunk_in_flight <- false;
                  fail_current t e
            end)

let create kernel engine =
  let t =
    { kernel; engine; chunk_in_flight = false; current = None; ops = 0 }
  in
  engine.Hil.digest_set_data_client (fun _sub ->
      (* the returned window was a clone over the allow buffer; nothing to
         recycle *)
      t.chunk_in_flight <- false;
      feed t);
  engine.Hil.digest_set_digest_client (fun digest ->
      match t.current with
      | Some op ->
          t.current <- None;
          t.ops <- t.ops + 1;
          let written =
            Kernel.with_allow_rw t.kernel op.op_pid ~driver:op.op_driver
              ~allow_num:allow_digest_out (fun out ->
                let m = min (Bytes.length digest) (Subslice.length out) in
                Subslice.blit_from_bytes ~src:digest ~src_off:0 out ~dst_off:0
                  ~len:m;
                m)
          in
          let n = match written with Ok n -> n | Error _ -> 0 in
          ignore
            (Kernel.schedule_upcall t.kernel op.op_pid ~driver:op.op_driver
               ~subscribe_num:0 ~args:(n, 0, 0))
      | None -> ());
  t

let command t ~driver_num proc ~command_num ~arg1:_ ~arg2:_ =
  let pid = Process.id proc in
  match command_num with
  | 0 -> Syscall.Success
  | 1 -> (
      if t.current <> None then Syscall.Failure Error.BUSY
      else
        let data_len =
          Kernel.allow_size t.kernel pid ~kind:`Ro ~driver:driver_num
            ~allow_num:allow_data
        in
        if data_len = 0 then Syscall.Failure Error.RESERVE
        else
          let mode =
            if driver_num = Driver_num.sha then Ok Hil.D_sha256
            else
              match
                Kernel.with_allow_ro t.kernel pid ~driver:driver_num
                  ~allow_num:allow_key (fun key -> Subslice.to_bytes key)
              with
              | Ok key when Bytes.length key > 0 -> Ok (Hil.D_hmac key)
              | Ok _ -> Error Error.RESERVE
              | Error e -> Error e
          in
          match mode with
          | Error e -> Syscall.Failure e
          | Ok mode -> (
              match t.engine.Hil.digest_set_mode mode with
              | Error e -> Syscall.Failure e
              | Ok () ->
                  t.current <-
                    Some { op_pid = pid; op_driver = driver_num; offset = 0;
                           data_len };
                  feed t;
                  Syscall.Success))
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver_hmac t =
  Driver.make ~driver_num:Driver_num.hmac ~name:"hmac"
    (fun proc ~command_num ~arg1 ~arg2 ->
      command t ~driver_num:Driver_num.hmac proc ~command_num ~arg1 ~arg2)

let driver_sha t =
  Driver.make ~driver_num:Driver_num.sha ~name:"sha"
    (fun proc ~command_num ~arg1 ~arg2 ->
      command t ~driver_num:Driver_num.sha proc ~command_num ~arg1 ~arg2)

let ops_completed t = t.ops
