open Tock

type policy =
  [ `Require_sha256
  | `Require_hmac of bytes
  | `Require_signature of bytes list
  | `Accept_any of bytes list * bytes ]

type t = {
  digest : Hil.digest;
  pke : Hil.pke;
  policy : policy;
  mutable checks : int;
  mutable busy : bool;
  mutable queue : (unit -> unit) list;
}

let create ~digest ~pke ~policy =
  { digest; pke; policy; checks = 0; busy = false; queue = [] }

let run_next t =
  match t.queue with
  | [] -> t.busy <- false
  | job :: rest ->
      t.queue <- rest;
      t.busy <- true;
      job ()

let submit t job =
  t.queue <- t.queue @ [ job ];
  if not t.busy then run_next t

(* Compute a digest of [region] through the hardware engine, feeding
   64-byte chunks, then call [k digest]. *)
let hw_digest t mode region k =
  match t.digest.Hil.digest_set_mode mode with
  | Error e -> k (Error e)
  | Ok () ->
      (* otock-lint: allow capsule-byte-copy — load-time check: hash a
         stable snapshot of the region, once per process load *)
      let sub = Subslice.of_bytes (Bytes.copy region) in
      let total = Bytes.length region in
      let offset = ref 0 in
      let rec feed () =
        if !offset >= total then (
          t.digest.Hil.digest_set_digest_client (fun d -> k (Ok d));
          match t.digest.Hil.digest_run () with
          | Ok () -> ()
          | Error e -> k (Error e))
        else begin
          Subslice.reset sub;
          let n = min 64 (total - !offset) in
          Subslice.slice sub ~pos:!offset ~len:n;
          t.digest.Hil.digest_set_data_client (fun _sub -> feed ());
          match t.digest.Hil.digest_add_data sub with
          | Ok () -> offset := !offset + n
          | Error (e, _) -> k (Error e)
        end
      in
      feed ()

let constant_eq a b =
  Bytes.length a = Bytes.length b
  &&
  let d = ref 0 in
  Bytes.iteri (fun i c -> d := !d lor (Char.code c lxor Char.code (Bytes.get b i))) a;
  !d = 0

(* Try the credentials in footer order against the policy; verdict true on
   the first that verifies. *)
let check t tbf ~region ~verdict =
  submit t (fun () ->
      t.checks <- t.checks + 1;
      let finish v why =
        verdict (v, why);
        run_next t
      in
      let creds = tbf.Tock_tbf.Tbf.footers in
      let trusted_keys, hmac_key =
        match t.policy with
        | `Require_signature keys -> (keys, None)
        | `Require_hmac k -> ([], Some k)
        | `Accept_any (keys, k) -> (keys, Some k)
        | `Require_sha256 -> ([], None)
      in
      let rec try_next = function
        | [] -> finish false "no acceptable credential"
        | Tock_tbf.Tbf.Sha256_digest d :: rest -> (
            match t.policy with
            | `Require_sha256 | `Accept_any _ ->
                hw_digest t Hil.D_sha256 region (function
                  | Ok computed ->
                      if constant_eq computed d then finish true "sha256"
                      else try_next rest
                  | Error _ -> try_next rest)
            | _ -> try_next rest)
        | Tock_tbf.Tbf.Hmac_cred { tag; _ } :: rest -> (
            match hmac_key with
            | Some key ->
                hw_digest t (Hil.D_hmac key) region (function
                  | Ok computed ->
                      if constant_eq computed tag then finish true "hmac"
                      else try_next rest
                  | Error _ -> try_next rest)
            | None -> try_next rest)
        | Tock_tbf.Tbf.Schnorr_cred { pubkey; signature } :: rest ->
            if
              trusted_keys <> []
              && not (List.exists (fun k -> constant_eq k pubkey) trusted_keys)
            then try_next rest
            else if trusted_keys = [] then try_next rest
            else begin
              t.pke.Hil.pke_set_client (fun ok ->
                  if ok then finish true "signature" else try_next rest);
              match t.pke.Hil.pke_verify ~pubkey ~msg:region ~signature with
              | Ok () -> ()
              | Error _ -> try_next rest
            end
        | Tock_tbf.Tbf.Padding _ :: rest -> try_next rest
      in
      try_next creds)

let checker t =
  {
    Process_loader.check_credentials =
      (fun tbf ~region ~verdict -> check t tbf ~region ~verdict);
  }

let checks_run t = t.checks
