open Tock

type grant_state = { mutable enabled_mask : int }

type t = {
  kernel : Kernel.t;
  pins : Hil.gpio_pin array;
  active_high : bool;
  grant : grant_state Grant.t;
}

let create kernel ~buttons ~active_high ~grant_cap =
  let t =
    {
      kernel;
      pins = buttons;
      active_high;
      grant =
        Grant.create ~cap:grant_cap ~name:"button" ~size_bytes:8 ~init:(fun () ->
            { enabled_mask = 0 });
    }
  in
  Kernel.register_grant kernel ~name:"button"
    ~preallocate:(fun p -> Grant.preallocate t.grant p)
    ~is_allocated:(fun p -> Grant.is_allocated t.grant p);
  Array.iteri
    (fun i pin ->
      pin.Hil.pin_make_input ();
      pin.Hil.pin_set_client (fun level ->
          let pressed = if active_high then level else not level in
          (* Fan out to every process that enabled this button. *)
          List.iter
            (fun pid ->
              match Kernel.find_process t.kernel pid with
              | Some proc ->
                  let enabled =
                    match
                      Grant.enter t.grant proc (fun g ->
                          g.enabled_mask land (1 lsl i) <> 0)
                    with
                    | Ok b -> b
                    | Error _ -> false
                  in
                  if enabled then
                    ignore
                      (Kernel.schedule_upcall t.kernel pid
                         ~driver:Driver_num.button ~subscribe_num:0
                         ~args:(i, (if pressed then 1 else 0), 0))
              | None -> ())
            (Kernel.process_ids t.kernel)))
    buttons;
  t

let command t proc ~command_num ~arg1 ~arg2:_ =
  let n = Array.length t.pins in
  let check i k = if i < 0 || i >= n then Syscall.Failure Error.INVAL else k () in
  match command_num with
  | 0 -> Syscall.Success_u32 n
  | 1 ->
      check arg1 (fun () ->
          t.pins.(arg1).Hil.pin_enable_interrupt `Either;
          match
            Grant.enter t.grant proc (fun g ->
                g.enabled_mask <- g.enabled_mask lor (1 lsl arg1))
          with
          | Ok () -> Syscall.Success
          | Error e -> Syscall.Failure e)
  | 2 ->
      check arg1 (fun () ->
          match
            Grant.enter t.grant proc (fun g ->
                g.enabled_mask <- g.enabled_mask land lnot (1 lsl arg1))
          with
          | Ok () -> Syscall.Success
          | Error e -> Syscall.Failure e)
  | 3 ->
      check arg1 (fun () ->
          let level = t.pins.(arg1).Hil.pin_read () in
          let pressed = if t.active_high then level else not level in
          Syscall.Success_u32 (if pressed then 1 else 0))
  | _ -> Syscall.Failure Error.NOSUPPORT

let driver t =
  Driver.make ~driver_num:Driver_num.button ~name:"button"
    (fun proc ~command_num ~arg1 ~arg2 -> command t proc ~command_num ~arg1 ~arg2)
