(** UART virtualizer: shares one UART among several kernel clients
    (console driver, process console, debug writer).

    Transmit requests queue in arrival order; each virtual device owns at
    most one in-flight buffer (held by the mux until its completion
    callback returns it — the ownership-passing protocol of paper §4.2).
    Receive is exclusive: one device may hold the receive side at a time. *)

type t

type vdev

val create : Tock.Hil.uart -> t

val new_device : t -> vdev

val transmit : vdev -> Tock.Subslice.t -> (unit, Tock.Error.t * Tock.Subslice.t) result
(** BUSY if this device already has a transmit queued or in flight. *)

val set_transmit_client : vdev -> (Tock.Subslice.t -> unit) -> unit

val transmit_iov :
  vdev ->
  Tock.Subslice.t array ->
  (unit, Tock.Error.t * Tock.Subslice.t array) result
(** Scatter-gather transmit: the windows go out back to back as one
    hardware batch with a single completion. Same one-in-flight rule as
    {!transmit}. *)

val set_transmit_iov_client : vdev -> (Tock.Subslice.t array -> unit) -> unit

val receive : vdev -> Tock.Subslice.t -> (unit, Tock.Error.t * Tock.Subslice.t) result
(** BUSY if any device holds the receive side. *)

val set_receive_client : vdev -> (Tock.Subslice.t -> unit) -> unit

val abort_receive : vdev -> unit

val queue_depth : t -> int
