type item = Single of Tock.Subslice.t | Iov of Tock.Subslice.t array

type vdev = {
  mux : t;
  mutable tx_client : Tock.Subslice.t -> unit;
  mutable tx_iov_client : Tock.Subslice.t array -> unit;
  mutable rx_client : Tock.Subslice.t -> unit;
  mutable tx_queued : bool;
}

and t = {
  hw : Tock.Hil.uart;
  mutable queue : (vdev * item) list; (* FIFO, head = oldest *)
  mutable inflight : vdev option;
  mutable rx_holder : vdev option;
}

let fail_back dev item =
  dev.tx_queued <- false;
  match item with
  | Single buf -> dev.tx_client buf
  | Iov iov -> dev.tx_iov_client iov

let rec pump t =
  match (t.inflight, t.queue) with
  | None, (dev, item) :: rest -> (
      let started =
        match item with
        | Single buf ->
            Result.map_error (fun (e, _) -> e) (t.hw.Tock.Hil.uart_transmit buf)
        | Iov iov ->
            Result.map_error
              (fun (e, _) -> e)
              (t.hw.Tock.Hil.uart_transmit_iov iov)
      in
      match started with
      | Ok () ->
          t.queue <- rest;
          t.inflight <- Some dev
      | Error Tock.Error.BUSY ->
          (* Hardware still draining; retry on next completion. The buffer
             stays queued. *)
          ()
      | Error _ ->
          (* Give the buffer back with a failure and move on. *)
          t.queue <- rest;
          fail_back dev item;
          pump t)
  | _ -> ()

let create hw =
  let t = { hw; queue = []; inflight = None; rx_holder = None } in
  hw.Tock.Hil.uart_set_transmit_client (fun buf ->
      match t.inflight with
      | Some dev ->
          t.inflight <- None;
          dev.tx_queued <- false;
          dev.tx_client buf;
          pump t
      | None -> ());
  hw.Tock.Hil.uart_set_transmit_iov_client (fun iov ->
      match t.inflight with
      | Some dev ->
          t.inflight <- None;
          dev.tx_queued <- false;
          dev.tx_iov_client iov;
          pump t
      | None -> ());
  hw.Tock.Hil.uart_set_receive_client (fun buf ->
      match t.rx_holder with
      | Some dev ->
          t.rx_holder <- None;
          dev.rx_client buf
      | None -> ());
  t

let new_device t =
  {
    mux = t;
    tx_client = (fun (_ : Tock.Subslice.t) -> ());
    tx_iov_client = (fun (_ : Tock.Subslice.t array) -> ());
    rx_client = (fun (_ : Tock.Subslice.t) -> ());
    tx_queued = false;
  }

let enqueue dev item =
  let t = dev.mux in
  dev.tx_queued <- true;
  t.queue <- t.queue @ [ (dev, item) ];
  pump t;
  Ok ()

let transmit dev buf =
  if dev.tx_queued then Error (Tock.Error.BUSY, buf)
  else enqueue dev (Single buf)

let transmit_iov dev iov =
  if dev.tx_queued then Error (Tock.Error.BUSY, iov)
  else enqueue dev (Iov iov)

let set_transmit_client dev fn = dev.tx_client <- fn

let set_transmit_iov_client dev fn = dev.tx_iov_client <- fn

let receive dev buf =
  let t = dev.mux in
  match t.rx_holder with
  | Some _ -> Error (Tock.Error.BUSY, buf)
  | None -> (
      match t.hw.Tock.Hil.uart_receive buf with
      | Ok () ->
          t.rx_holder <- Some dev;
          Ok ()
      | Error e -> Error e)

let set_receive_client dev fn = dev.rx_client <- fn

let abort_receive dev =
  let t = dev.mux in
  match t.rx_holder with
  | Some d when d == dev ->
      t.hw.Tock.Hil.uart_abort_receive ();
      t.rx_holder <- None
  | _ -> ()

let queue_depth t = List.length t.queue
