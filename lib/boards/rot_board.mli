(** The hardware root-of-trust configuration (paper §3): RISC-V-class
    chip, credential-checked asynchronous process loading, crypto
    services, optionally the blocking-command extension the Ti50 fork
    wanted.

    Apps arrive as signed TBF images in an app-flash region; the
    asynchronous loader drives the signature-checker capsule over the
    digest and public-key engines before any process is created. *)

(* otock-lint: allow-file crypto-confinement the root-of-trust interface exposes the device keypair types; see rot_board.ml *)

type t = {
  board : Board.t;
  checker : Tock_capsules.Signature_checker.t;
  signing_rng : Tock_crypto.Prng.t;
  secret_key : Tock_crypto.Schnorr.secret_key;
  public_key : Tock_crypto.Schnorr.public_key;
}

val create :
  ?seed:int64 ->
  ?blocking_commands:bool ->
  ?policy:Tock_capsules.Signature_checker.policy ->
  unit ->
  t
(** Default policy: [`Require_signature [own public key]]. *)

val sign_app :
  t ->
  name:string ->
  ?min_ram:int ->
  ?binary:bytes ->
  unit ->
  Tock_tbf.Tbf.t
(** Build a TBF for [name] signed with the board's key. *)

val tamper : Tock_tbf.Tbf.t -> Tock_tbf.Tbf.t
(** Flip a bit in the binary *after* signing (evil-maid image). *)

val load_signed :
  t ->
  apps:Tock_tbf.Tbf.t list ->
  registry:(string * (Tock_userland.Emu.app -> unit)) list ->
  on_done:(Tock.Process_loader.summary -> unit) ->
  unit
(** Concatenate, start the async loader, and return; pump the board to
    make progress. *)

val public_key_bytes : t -> bytes

val enable_app_loader :
  t ->
  registry:(string * (Tock_userland.Emu.app -> unit)) list ->
  Tock_capsules.App_loader.t
(** Register the userspace dynamic-installation driver (paper §3.4): apps
    can then submit signed TBF images for verification and startup at
    runtime. *)
