(* otock-lint: allow-file crypto-confinement the root-of-trust board is the trusted composition root that owns the device keypair; it drives Prng/Schnorr directly to mint signing credentials and seed the checker policy *)

type t = {
  board : Board.t;
  checker : Tock_capsules.Signature_checker.t;
  signing_rng : Tock_crypto.Prng.t;
  secret_key : Tock_crypto.Schnorr.secret_key;
  public_key : Tock_crypto.Schnorr.public_key;
}

let create ?(seed = 0x0071_5070L) ?(blocking_commands = false) ?policy () =
  let sim = Tock_hw.Sim.create ~seed () in
  let chip = Tock_hw.Chip.rv32_like sim in
  let config =
    { (Tock.Kernel.default_config ()) with Tock.Kernel.blocking_commands }
  in
  let board = Board.build ~config chip in
  let signing_rng = Tock_crypto.Prng.create ~seed:(Int64.add seed 17L) in
  let secret_key, public_key = Tock_crypto.Schnorr.keypair signing_rng in
  let policy =
    match policy with
    | Some p -> p
    | None ->
        `Require_signature
          [ Tock_crypto.Schnorr.public_key_to_bytes public_key ]
  in
  let checker =
    Tock_capsules.Signature_checker.create
      ~digest:board.Board.checker_digest ~pke:board.Board.checker_pke ~policy
  in
  { board; checker; signing_rng; secret_key; public_key }

let sign_app t ~name ?(min_ram = 4096) ?binary () =
  let binary =
    match binary with Some b -> b | None -> Bytes.of_string (name ^ "-code")
  in
  let tbf = Tock_tbf.Tbf.make ~min_ram ~name ~binary () in
  Tock_tbf.Tbf.add_schnorr tbf ~sk:t.secret_key ~rng:t.signing_rng

let tamper tbf =
  let binary = Bytes.copy tbf.Tock_tbf.Tbf.binary in
  if Bytes.length binary > 0 then begin
    let c = Char.code (Bytes.get binary 0) in
    Bytes.set binary 0 (Char.chr (c lxor 0x01))
  end;
  { tbf with Tock_tbf.Tbf.binary }

let load_signed t ~apps ~registry ~on_done =
  let flash =
    Bytes.concat Bytes.empty (List.map Tock_tbf.Tbf.serialize apps)
  in
  Tock.Process_loader.load_async t.board.Board.kernel
    ~cap:t.board.Board.pm_cap ~flash_base:Board.flash_app_base ~flash
    ~lookup:(Tock_userland.Apps.registry registry)
    ~checker:(Tock_capsules.Signature_checker.checker t.checker)
    ~on_done

let public_key_bytes t = Tock_crypto.Schnorr.public_key_to_bytes t.public_key

let enable_app_loader t ~registry =
  let board = t.board in
  let loader =
    Tock_capsules.App_loader.create board.Board.kernel
      ~cap:board.Board.ext_cap ~pm_cap:board.Board.pm_cap
      ~lookup:(Tock_userland.Apps.registry registry)
      ~checker:(Tock_capsules.Signature_checker.checker t.checker)
      ~flash_base:Board.flash_app_base
  in
  Tock.Kernel.register_driver board.Board.kernel
    (Tock_capsules.App_loader.driver loader);
  loader
