open Tock
open Tock_capsules

type t = {
  kernel : Kernel.t;
  chip : Tock_hw.Chip.t;
  sim : Tock_hw.Sim.t;
  console : Console.t;
  alarm_mux : Alarm_mux.t;
  kv : Kv_store.t;
  ipc : Ipc.t;
  process_console : Process_console.t;
  debug : Debug_writer.t;
  net : Net_stack.t option;
  legacy : Legacy_console.t;
  checker_digest : Hil.digest;
  checker_pke : Hil.pke;
  uart_log : Buffer.t;
  main_cap : Capability.main_loop;
  pm_cap : Capability.process_management;
  ext_cap : Capability.external_process;
}

let flash_app_base = 0x0010_0000

let build ?config ?(with_sensors = true) (chip : Tock_hw.Chip.t) =
  let sim = chip.Tock_hw.Chip.sim in
  let kernel = Kernel.create ?config chip in
  (* Capabilities: minted here and nowhere else. *)
  let main_cap = Capability.Trusted_mint.main_loop () in
  let pm_cap = Capability.Trusted_mint.process_management () in
  let ext_cap = Capability.Trusted_mint.external_process () in
  let grant_cap = Capability.Trusted_mint.memory_allocation () in
  (* UART capture for tests/examples. *)
  let uart_log = Buffer.create 512 in
  Tock_hw.Uart.set_tx_sink chip.Tock_hw.Chip.uart0 (fun b ->
      Buffer.add_bytes uart_log b);
  (* HILs (one adaptor per peripheral). *)
  let uart0 = Adaptors.uart chip.Tock_hw.Chip.uart0 in
  let alarm_hil = Adaptors.alarm chip.Tock_hw.Chip.timer in
  let entropy = Adaptors.entropy chip.Tock_hw.Chip.trng in
  let digest = Adaptors.digest chip.Tock_hw.Chip.sha in
  let boot_digest = Adaptors.digest chip.Tock_hw.Chip.sha_boot in
  let aes = Adaptors.aes chip.Tock_hw.Chip.aes in
  let pke = Adaptors.pke chip.Tock_hw.Chip.pke in
  let flash = Adaptors.flash chip.Tock_hw.Chip.flash in
  (* Virtualizers. *)
  let umux = Uart_mux.create uart0 in
  let amux = Alarm_mux.create ~obs:(Kernel.obs kernel) alarm_hil in
  let fmux = Flash_mux.create flash in
  (* Capsules. *)
  let console = Console.create kernel (Uart_mux.new_device umux) ~grant_cap in
  let alarm_drv = Alarm_driver.create kernel amux ~grant_cap in
  let leds =
    Led_driver.create
      ~leds:(Array.init 4 (fun i -> Adaptors.gpio_pin chip.Tock_hw.Chip.gpio ~pin:i))
      ~active_high:false
  in
  let buttons =
    Button_driver.create kernel
      ~buttons:
        (Array.init 2 (fun i ->
             Adaptors.gpio_pin chip.Tock_hw.Chip.gpio ~pin:(4 + i)))
      ~active_high:true ~grant_cap
  in
  let gpio =
    Gpio_driver.create kernel
      ~pins:
        (Array.init 8 (fun i ->
             Adaptors.gpio_pin chip.Tock_hw.Chip.gpio ~pin:(8 + i)))
  in
  let rng = Rng_driver.create kernel entropy ~grant_cap in
  let adc_drv = Adc_driver.create kernel (Adaptors.adc chip.Tock_hw.Chip.adc) in
  let digest_drv = Digest_driver.create kernel digest in
  let aes_drv = Aes_driver.create kernel aes in
  let kv = Kv_store.create kernel (Flash_mux.new_client fmux) ~first_page:0 ~pages:16 in
  let nv =
    Nonvolatile_storage.create kernel (Flash_mux.new_client fmux) ~first_page:16
      ~pages_per_app:4 ~max_apps:8
  in
  let ipc = Ipc.create kernel in
  let process_console =
    Process_console.create kernel (Uart_mux.new_device umux) ~cap:pm_cap
  in
  let legacy = Legacy_console.create kernel amux in
  let debug = Debug_writer.create (Uart_mux.new_device umux) in
  (* Board-level freezer sections: state a frozen witness must carry
     that lives outside the kernel — the UART capture buffer and any
     flash pages with materialized backing (erased pages are elided;
     see Flash_ctrl). Both load after the process patch ([`Post]). *)
  Kernel.register_freezer kernel ~name:"uart_log" ~phase:`Post
    ~save:(fun buf -> Buffer.add_buffer buf uart_log)
    ~load:(fun blob ->
      Buffer.clear uart_log;
      Buffer.add_string uart_log blob;
      Ok ());
  let flash_ctrl = chip.Tock_hw.Chip.flash in
  Kernel.register_freezer kernel ~name:"flash" ~phase:`Post
    ~save:(fun buf ->
      let n = ref 0 in
      Tock_hw.Flash_ctrl.iter_dirty_pages flash_ctrl (fun ~page:_ _ ->
          Stdlib.incr n);
      Kernel.Witness.add_int buf !n;
      Tock_hw.Flash_ctrl.iter_dirty_pages flash_ctrl (fun ~page data ->
          Kernel.Witness.add_int buf page;
          Kernel.Witness.add_string buf (Bytes.to_string data)))
    ~load:(fun blob ->
      Kernel.Witness.guard (fun () ->
          let r = Kernel.Witness.reader blob in
          let n = Kernel.Witness.int r in
          if n < 0 || n > 1_000_000 then
            Kernel.Witness.corrupt "bad flash page count %d" n;
          for _ = 1 to n do
            let page = Kernel.Witness.int r in
            let data = Kernel.Witness.string r in
            try
              Tock_hw.Flash_ctrl.restore_page flash_ctrl ~page
                (Bytes.of_string data)
            with Invalid_argument m ->
              Kernel.Witness.corrupt "flash page %d: %s" page m
          done;
          if not (Kernel.Witness.at_end r) then
            Kernel.Witness.corrupt "trailing bytes in flash section"));
  Kernel.set_fault_hook kernel (fun proc reason ->
      Debug_writer.printf debug
        "panicked process: %s (pid %d)\r\n  reason: %s\r\n  ram: 0x%08x-0x%08x app_brk=0x%08x kernel_brk=0x%08x\r\n  restarts: %d, syscalls: %d"
        (Process.name proc) (Process.id proc)
        (match reason with
        | Process.Mpu_violation m -> "MPU violation: " ^ m
        | Process.Bad_syscall m -> "bad syscall: " ^ m
        | Process.App_panic m -> "app panic: " ^ m)
        (Process.ram_base proc) (Process.ram_end proc)
        (Process.app_break proc) (Process.kernel_break proc)
        (Process.restart_count proc) (Process.syscall_count proc));
  if with_sensors then begin
    let env = Tock_hw.Sensors.default_env ~clock_hz:(Tock_hw.Sim.clock_hz sim) in
    List.iter
      (Tock_hw.Sensors.attach sim chip.Tock_hw.Chip.i2c env)
      [ Tock_hw.Sensors.Temperature; Tock_hw.Sensors.Pressure;
        Tock_hw.Sensors.Light; Tock_hw.Sensors.Accel ]
  end;
  let temperature =
    Sensor_driver.create kernel
      (Adaptors.i2c_device chip.Tock_hw.Chip.i2c
         ~addr:(Tock_hw.Sensors.i2c_addr Tock_hw.Sensors.Temperature))
      ~driver_num:Driver_num.temperature ~name:"temperature"
  in
  let pressure =
    Sensor_driver.create kernel
      (Adaptors.i2c_device chip.Tock_hw.Chip.i2c
         ~addr:(Tock_hw.Sensors.i2c_addr Tock_hw.Sensors.Pressure))
      ~driver_num:Driver_num.pressure ~name:"pressure"
  in
  let light =
    Sensor_driver.create kernel
      (Adaptors.i2c_device chip.Tock_hw.Chip.i2c
         ~addr:(Tock_hw.Sensors.i2c_addr Tock_hw.Sensors.Light))
      ~driver_num:Driver_num.light ~name:"light"
  in
  (* Register the syscall drivers. *)
  List.iter (Kernel.register_driver kernel)
    [
      Console.driver console;
      Alarm_driver.driver alarm_drv;
      Led_driver.driver leds;
      Button_driver.driver buttons;
      Gpio_driver.driver gpio;
      Rng_driver.driver rng;
      Adc_driver.driver adc_drv;
      Digest_driver.driver_hmac digest_drv;
      Digest_driver.driver_sha digest_drv;
      Aes_driver.driver aes_drv;
      Kv_store.driver kv;
      Nonvolatile_storage.driver nv;
      Ipc.driver ipc;
      Process_info.driver (Process_info.create kernel);
      Sensor_driver.driver temperature;
      Sensor_driver.driver pressure;
      Sensor_driver.driver light;
      Legacy_console.driver legacy;
    ];
  let net =
    match chip.Tock_hw.Chip.radio with
    | Some r ->
        let radio_hil = Adaptors.radio r in
        (* The reliable link layer owns the radio; the raw driver rides its
           pass-through view, so both syscall interfaces coexist. *)
        (* Ack timeout must exceed the worst-case round trip: a full
           127-byte frame (~63k cycles of air time at 250 kbit/s) plus the
           ack (~12k). 160 ticks @1024 cycles/tick leaves margin — a
           shorter timeout makes the sender retransmit into its own ack
           and collide, livelocking large fragments. *)
        let net = Net_stack.create kernel radio_hil amux ~ack_timeout_ticks:160 in
        Kernel.register_driver kernel (Net_stack.driver net);
        Kernel.register_driver kernel
          (Radio_driver.driver
             (Radio_driver.create kernel (Net_stack.raw_radio net)));
        Some net
    | None -> None
  in
  {
    kernel;
    chip;
    sim;
    console;
    alarm_mux = amux;
    kv;
    ipc;
    process_console;
    debug;
    net;
    legacy;
    checker_digest = boot_digest;
    checker_pke = pke;
    uart_log;
    main_cap;
    pm_cap;
    ext_cap;
  }

let run_cycles t n = Kernel.run_cycles t.kernel ~cap:t.main_cap n

let run_until t ?max_cycles pred =
  Kernel.run_until t.kernel ~cap:t.main_cap ?max_cycles pred

let all_processes_done t =
  List.for_all
    (fun p ->
      match Process.state p with
      | Process.Terminated _ | Process.Faulted _ -> true
      | _ -> false)
    (Kernel.processes t.kernel)

let run_to_completion t ?(max_cycles = 2_000_000_000) () =
  ignore (run_until t ~max_cycles (fun () -> all_processes_done t))

let output t = Buffer.contents t.uart_log

let add_app t ~name ?(min_ram = 4096) ?flash ?storage main =
  let flash = Option.value flash ~default:(Bytes.of_string name) in
  Kernel.create_process t.kernel ~cap:t.pm_cap ~name ~flash_base:flash_app_base
    ~flash ~min_ram ?storage
    ~factory:(Tock_userland.Apps.to_factory main)
    ()

let load_tbf_sync t ~flash ~registry =
  Process_loader.load_sync t.kernel ~cap:t.pm_cap ~flash_base:flash_app_base
    ~flash
    ~lookup:(Tock_userland.Apps.registry registry)
