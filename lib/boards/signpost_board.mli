(** The Signpost-style deployment (paper §2): several solar-powered
    sensor nodes, each a full board with radio, joined by one shared
    medium, running duty-cycled multiprogrammed workloads.

    This reproduces the original target of Tock's design: multiple
    isolated applications per node, asynchronous kernel for sleep, radio
    reporting. All nodes share one simulation clock. *)

type node = { node_board : Board.t; node_addr : int }

type t = {
  sim : Tock_hw.Sim.t;
  ether : Tock_hw.Radio.Ether.t;
  nodes : node list;
}

val create : ?seed:int64 -> ?loss_prob:float -> nodes:int -> unit -> t
(** Node radio addresses are 0x100, 0x101, ... *)

val run_all : t -> max_cycles:int -> unit
(** Multi-board stepping: round-robin the kernels; the clock advances to
    the next hardware event only when every kernel is idle. May overshoot
    [max_cycles] to the wake event that crosses it (legacy scenario
    semantics). *)

val run_to_deadline : t -> deadline:int -> [ `Budget | `Asleep of int | `Stalled ]
(** Deadline-bounded stepping for the fleet calendar, mirroring
    {!Tock.Kernel.run_to_deadline}: never sleeps the shared clock past
    [deadline]; reports [`Asleep d] (clock unmoved) when every kernel is
    idle with the next event at [d >= deadline], so the group can be
    parked and fast-forwarded in O(1) via {!sleep_all_to}. *)

val sleep_all_to : t -> int -> unit
(** Deep-sleep every node's CPU and advance the shared clock to an
    absolute time; events due in the interval fire at their deadlines.
    No-op if the time is not in the future. *)

val total_energy_uj : t -> float
