type node = { node_board : Board.t; node_addr : int }

type t = {
  sim : Tock_hw.Sim.t;
  ether : Tock_hw.Radio.Ether.t;
  nodes : node list;
}

let create ?(seed = 0x5169_0A0BL) ?(loss_prob = 0.0) ~nodes:n () =
  let sim = Tock_hw.Sim.create ~seed () in
  let ether = Tock_hw.Radio.Ether.create sim ~loss_prob () in
  let nodes =
    List.init n (fun i ->
        let addr = 0x100 + i in
        let chip = Tock_hw.Chip.sam4l_like ~ether ~radio_addr:addr sim in
        { node_board = Board.build chip; node_addr = addr })
  in
  { sim; ether; nodes }

(* Busy-step one kernel while it has work, without sleeping (a kernel's
   [step] sleeping would jump the shared clock, so probe work first).
   Returns true if any step did work. *)
let drain_node n =
  let b = n.node_board in
  let k = b.Board.kernel in
  let worked = ref false in
  let rec drain budget =
    if budget > 0 then
      let chip = b.Board.chip in
      let has_irq = Tock_hw.Irq.has_pending chip.Tock_hw.Chip.irq in
      let has_deferred =
        Tock.Deferred_call.has_pending (Tock.Kernel.deferred k)
      in
      let has_proc =
        List.exists
          (fun p ->
            match Tock.Process.state p with
            | Tock.Process.Runnable -> true
            | Tock.Process.Yielded -> Tock.Process.has_pending_upcalls p
            | Tock.Process.Yielded_for w ->
                Tock.Process.has_upcall_for p ~driver:w.driver
                  ~subscribe_num:w.subscribe_num
            | Tock.Process.Blocked_command w ->
                Tock.Process.has_upcall_for p ~driver:w.driver
                  ~subscribe_num:w.subscribe_num
            | _ -> false)
          (Tock.Kernel.processes k)
      in
      if has_irq || has_deferred || has_proc then begin
        (match Tock.Kernel.step k ~cap:b.Board.main_cap with
        | `Worked -> worked := true
        | `Slept | `Stalled -> ());
        drain (budget - 1)
      end
  in
  drain 1000;
  !worked

(* All CPUs deep-sleep and the shared clock advances to [time]; events
   due in the interval fire at their own deadlines. *)
let sleep_all_to t time =
  if time > Tock_hw.Sim.now t.sim then begin
    List.iter
      (fun n -> Tock_hw.Chip.cpu_set_active n.node_board.Board.chip false)
      t.nodes;
    Tock_hw.Sim.sleep_until t.sim time;
    List.iter
      (fun n -> Tock_hw.Chip.cpu_set_active n.node_board.Board.chip true)
      t.nodes
  end

(* One shared clock, several kernels: give every kernel a chance to do
   work; only sleep the clock when all are idle. Like
   [Kernel.run_to_deadline], the group never sleeps past [deadline]:
   when everyone is idle and the next event is at or beyond it, the
   group reports [`Asleep] so the fleet calendar can park it. *)
let run_to_deadline t ~deadline =
  let rec loop () =
    if Tock_hw.Sim.now t.sim >= deadline then `Budget
    else begin
      let any_worked =
        List.fold_left (fun acc n -> drain_node n || acc) false t.nodes
      in
      if any_worked then loop ()
      else
        let d = Tock_hw.Sim.next_deadline t.sim in
        if d = max_int then `Stalled
        else if d >= deadline then `Asleep d
        else begin
          sleep_all_to t d;
          loop ()
        end
    end
  in
  loop ()

let run_all t ~max_cycles =
  let deadline = Tock_hw.Sim.now t.sim + max_cycles in
  let rec go () =
    match run_to_deadline t ~deadline with
    | `Budget | `Stalled -> ()
    | `Asleep d ->
        (* Legacy semantics: overshoot to the wake event and keep going
           (callers bound a scenario, not a cycle-exact budget). *)
        sleep_all_to t d;
        go ()
  in
  go ()

let total_energy_uj t = Tock_hw.Sim.total_microjoules t.sim
